#include "timing_checker.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"

namespace mcsim {

TimingChecker::TimingChecker(const DramGeometry &geom, const DramTimings &tm,
                             const ClockDomains &clk)
    : geom_(geom), tm_(tm), clk_(clk),
      bankOpen_(geom.ranksPerChannel * geom.banksPerRank, false),
      lastCasEnd_(1, Tick{})
{
    // Cover the largest backward-looking window (tRFC dominates every
    // registered device) plus slack; see historyDepth_'s comment.
    const std::uint32_t largestWindow =
        std::max({tm_.tRFC, tm_.tRFCpb, tm_.tFAW, tm_.tRC,
                  tm_.tCWL + tm_.tBURST + tm_.tWTRL,
                  tm_.tCWL + tm_.tBURST + tm_.tWR});
    historyDepth_ = std::max<std::size_t>(256, largestWindow + 16);
}

const TimingChecker::CmdRecord *
TimingChecker::lastOf(DramCommandType type, std::uint32_t rank,
                      std::uint32_t bank, bool anyBank, Tick now,
                      TickSpan windowTicks) const
{
    for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
        // Records older than the window cannot violate it; the tick
        // guard keeps a probe replayed out of order (tick > now, as
        // some tests do) from terminating the scan early.
        if (it->tick <= now && now - it->tick >= windowTicks)
            return nullptr;
        if (it->cmd.type != type || it->cmd.rank != rank)
            continue;
        if (anyBank || it->cmd.bank == bank)
            return &*it;
    }
    return nullptr;
}

const TimingChecker::CmdRecord *
TimingChecker::lastOfGroup(DramCommandType type, std::uint32_t rank,
                           std::uint32_t group, Tick now,
                           TickSpan windowTicks) const
{
    for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
        if (it->tick <= now && now - it->tick >= windowTicks)
            return nullptr; // Older records cannot violate the window.
        if (it->cmd.type != type || it->cmd.rank != rank)
            continue;
        if (geom_.bankGroupOf(it->cmd.bank) == group)
            return &*it;
    }
    return nullptr;
}

std::string
TimingChecker::check(const DramCommand &cmd, Tick now)
{
    std::ostringstream err;
    const auto bankIdx = cmd.rank * geom_.banksPerRank + cmd.bank;
    const auto gap = [&](const CmdRecord *rec) -> TickSpan {
        return rec ? now - rec->tick : kMaxTickSpan;
    };
    const auto cyc = [this](std::uint32_t c) { return clk_.dramToTicks(c); };

    // Command-bus spacing: at most one command per tCK.
    if (!history_.empty() && now < history_.back().tick + cyc(1))
        err << "command bus conflict; ";

    switch (cmd.type) {
      case DramCommandType::Activate: {
        if (bankOpen_[bankIdx])
            err << "ACT to open bank; ";
        if (gap(lastOf(DramCommandType::Activate, cmd.rank, cmd.bank,
                       false, now, cyc(tm_.tRC))) < cyc(tm_.tRC)) {
            err << "tRC violated; ";
        }
        if (gap(lastOf(DramCommandType::Precharge, cmd.rank, cmd.bank,
                       false, now, cyc(tm_.tRP))) < cyc(tm_.tRP)) {
            err << "tRP violated; ";
        }
        if (gap(lastOf(DramCommandType::Activate, cmd.rank, 0, true,
                       now, cyc(tm_.tRRD))) < cyc(tm_.tRRD)) {
            err << "tRRD violated; ";
        }
        if (gap(lastOfGroup(DramCommandType::Activate, cmd.rank,
                            geom_.bankGroupOf(cmd.bank), now,
                            cyc(tm_.tRRDL))) < cyc(tm_.tRRDL)) {
            err << "tRRD_L violated; ";
        }
        if (tm_.perBankRefresh) {
            // REFpb blocks only its own bank, for tRFCpb.
            if (gap(lastOf(DramCommandType::Refresh, cmd.rank,
                           cmd.bank, false, now, cyc(tm_.tRFCpb))) <
                cyc(tm_.tRFCpb)) {
                err << "tRFCpb violated; ";
            }
        } else if (gap(lastOf(DramCommandType::Refresh, cmd.rank, 0,
                              true, now, cyc(tm_.tRFC))) <
                   cyc(tm_.tRFC)) {
            err << "tRFC violated; ";
        }
        // tFAW: count activates to this rank in the trailing window.
        unsigned acts = 0;
        for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
            if (it->tick <= now && now - it->tick >= cyc(tm_.tFAW))
                break; // Nothing older is in the window.
            if (it->cmd.type == DramCommandType::Activate &&
                it->cmd.rank == cmd.rank &&
                now - it->tick < cyc(tm_.tFAW)) {
                ++acts;
            }
        }
        if (acts >= 4)
            err << "tFAW violated; ";
        break;
      }

      case DramCommandType::Read:
      case DramCommandType::Write: {
        const bool isRead = cmd.type == DramCommandType::Read;
        if (!bankOpen_[bankIdx])
            err << "CAS to closed bank; ";
        if (gap(lastOf(DramCommandType::Activate, cmd.rank, cmd.bank,
                       false, now, cyc(tm_.tRCD))) < cyc(tm_.tRCD)) {
            err << "tRCD violated; ";
        }
        // tCCD_S between CAS commands (any rank/bank, shared channel);
        // tCCD_L between CAS commands to the same bank group. Records
        // past the largest of the three windows cannot violate any of
        // them, so the scan is bounded even when no same-group CAS
        // exists in the (tRFC-deep) history.
        const std::uint32_t group = geom_.bankGroupOf(cmd.bank);
        const TickSpan casWindow =
            cyc(std::max({tm_.tCCD, tm_.tCCDL, tm_.tRTW}));
        bool sawAnyCas = false, sawGroupCas = false;
        for (auto it = history_.rbegin();
             it != history_.rend() && !(sawAnyCas && sawGroupCas); ++it) {
            if (it->tick <= now && now - it->tick >= casWindow)
                break;
            if (it->cmd.type != DramCommandType::Read &&
                it->cmd.type != DramCommandType::Write) {
                continue;
            }
            if (!sawAnyCas) {
                sawAnyCas = true;
                if (now - it->tick < cyc(tm_.tCCD))
                    err << "tCCD violated; ";
                // Read-to-write turnaround on the shared bus.
                if (!isRead &&
                    it->cmd.type == DramCommandType::Read &&
                    now - it->tick < cyc(tm_.tRTW)) {
                    err << "tRTW violated; ";
                }
            }
            if (!sawGroupCas && it->cmd.rank == cmd.rank &&
                geom_.bankGroupOf(it->cmd.bank) == group) {
                sawGroupCas = true;
                if (now - it->tick < cyc(tm_.tCCDL))
                    err << "tCCD_L violated; ";
            }
        }
        // Write-to-read turnaround within the same rank: tWTR_S from
        // any bank group, tWTR_L from the same bank group.
        if (isRead) {
            const TickSpan wtrWindow =
                cyc(tm_.tCWL + tm_.tBURST + tm_.tWTR);
            const auto *w = lastOf(DramCommandType::Write, cmd.rank, 0,
                                   true, now, wtrWindow);
            if (w && now - w->tick < wtrWindow)
                err << "tWTR violated; ";
            const TickSpan wtrLWindow =
                cyc(tm_.tCWL + tm_.tBURST + tm_.tWTRL);
            const auto *wg = lastOfGroup(DramCommandType::Write,
                                         cmd.rank, group, now,
                                         wtrLWindow);
            if (wg && now - wg->tick < wtrLWindow)
                err << "tWTR_L violated; ";
        }
        // Data-bus overlap.
        const Tick dataStart =
            now + cyc(isRead ? tm_.tCAS : tm_.tCWL);
        if (dataStart < lastCasEnd_[0])
            err << "data bus overlap; ";
        break;
      }

      case DramCommandType::Precharge: {
        if (!bankOpen_[bankIdx])
            err << "PRE to closed bank; ";
        if (gap(lastOf(DramCommandType::Activate, cmd.rank, cmd.bank,
                       false, now, cyc(tm_.tRAS))) < cyc(tm_.tRAS)) {
            err << "tRAS violated; ";
        }
        if (gap(lastOf(DramCommandType::Read, cmd.rank, cmd.bank,
                       false, now, cyc(tm_.tRTP))) < cyc(tm_.tRTP)) {
            err << "tRTP violated; ";
        }
        const TickSpan wrWindow = cyc(tm_.tCWL + tm_.tBURST + tm_.tWR);
        const auto *w = lastOf(DramCommandType::Write, cmd.rank,
                               cmd.bank, false, now, wrWindow);
        if (w && now - w->tick < wrWindow)
            err << "write recovery violated; ";
        break;
      }

      case DramCommandType::Refresh: {
        if (tm_.perBankRefresh) {
            // REFpb: only the target bank must be precharged; the rest
            // of the rank stays schedulable.
            if (bankOpen_[bankIdx])
                err << "REF with open bank; ";
            if (gap(lastOf(DramCommandType::Precharge, cmd.rank,
                           cmd.bank, false, now, cyc(tm_.tRP))) <
                cyc(tm_.tRP)) {
                err << "tRP before REF violated; ";
            }
            if (gap(lastOf(DramCommandType::Refresh, cmd.rank,
                           cmd.bank, false, now, cyc(tm_.tRFCpb))) <
                cyc(tm_.tRFCpb)) {
                err << "tRFCpb violated; ";
            }
            break;
        }
        for (std::uint32_t b = 0; b < geom_.banksPerRank; ++b) {
            if (bankOpen_[cmd.rank * geom_.banksPerRank + b])
                err << "REF with open bank; ";
        }
        if (gap(lastOf(DramCommandType::Precharge, cmd.rank, 0, true,
                       now, cyc(tm_.tRP))) < cyc(tm_.tRP)) {
            err << "tRP before REF violated; ";
        }
        break;
      }
    }

    const std::string msg = err.str();
    if (!msg.empty())
        return msg;

    // Accept: apply state.
    switch (cmd.type) {
      case DramCommandType::Activate:
        bankOpen_[bankIdx] = true;
        break;
      case DramCommandType::Precharge:
        bankOpen_[bankIdx] = false;
        break;
      case DramCommandType::Read:
        lastCasEnd_[0] = now + clk_.dramToTicks(tm_.tCAS + tm_.tBURST);
        break;
      case DramCommandType::Write:
        lastCasEnd_[0] = now + clk_.dramToTicks(tm_.tCWL + tm_.tBURST);
        break;
      case DramCommandType::Refresh:
        break;
    }
    history_.push_back({cmd, now});
    if (history_.size() > historyDepth_)
        history_.pop_front();
    ++accepted_;
    return {};
}

} // namespace mcsim
