#include "timing_checker.hh"

#include <sstream>

#include "common/log.hh"

namespace mcsim {

TimingChecker::TimingChecker(const DramGeometry &geom, const DramTimings &tm,
                             const ClockDomains &clk)
    : geom_(geom), tm_(tm), clk_(clk),
      bankOpen_(geom.ranksPerChannel * geom.banksPerRank, false),
      lastCasEnd_(1, 0)
{
}

const TimingChecker::CmdRecord *
TimingChecker::lastOf(DramCommandType type, std::uint32_t rank,
                      std::uint32_t bank, bool anyBank) const
{
    for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
        if (it->cmd.type != type || it->cmd.rank != rank)
            continue;
        if (anyBank || it->cmd.bank == bank)
            return &*it;
    }
    return nullptr;
}

std::string
TimingChecker::check(const DramCommand &cmd, Tick now)
{
    std::ostringstream err;
    const auto bankIdx = cmd.rank * geom_.banksPerRank + cmd.bank;
    const auto gap = [&](const CmdRecord *rec) -> Tick {
        return rec ? now - rec->tick : kMaxTick;
    };
    const auto cyc = [this](std::uint32_t c) { return clk_.dramToTicks(c); };

    // Command-bus spacing: at most one command per tCK.
    if (!history_.empty() && now < history_.back().tick + cyc(1))
        err << "command bus conflict; ";

    switch (cmd.type) {
      case DramCommandType::Activate: {
        if (bankOpen_[bankIdx])
            err << "ACT to open bank; ";
        if (gap(lastOf(DramCommandType::Activate, cmd.rank, cmd.bank)) <
            cyc(tm_.tRC)) {
            err << "tRC violated; ";
        }
        if (gap(lastOf(DramCommandType::Precharge, cmd.rank, cmd.bank)) <
            cyc(tm_.tRP)) {
            err << "tRP violated; ";
        }
        if (gap(lastOf(DramCommandType::Activate, cmd.rank, 0, true)) <
            cyc(tm_.tRRD)) {
            err << "tRRD violated; ";
        }
        if (gap(lastOf(DramCommandType::Refresh, cmd.rank, 0, true)) <
            cyc(tm_.tRFC)) {
            err << "tRFC violated; ";
        }
        // tFAW: count activates to this rank in the trailing window.
        unsigned acts = 0;
        for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
            if (it->cmd.type == DramCommandType::Activate &&
                it->cmd.rank == cmd.rank &&
                now - it->tick < cyc(tm_.tFAW)) {
                ++acts;
            }
        }
        if (acts >= 4)
            err << "tFAW violated; ";
        break;
      }

      case DramCommandType::Read:
      case DramCommandType::Write: {
        const bool isRead = cmd.type == DramCommandType::Read;
        if (!bankOpen_[bankIdx])
            err << "CAS to closed bank; ";
        if (gap(lastOf(DramCommandType::Activate, cmd.rank, cmd.bank)) <
            cyc(tm_.tRCD)) {
            err << "tRCD violated; ";
        }
        // tCCD between CAS commands (any rank/bank, shared channel).
        for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
            if (it->cmd.type == DramCommandType::Read ||
                it->cmd.type == DramCommandType::Write) {
                if (now - it->tick < cyc(tm_.tCCD))
                    err << "tCCD violated; ";
                // Read-to-write turnaround on the shared bus.
                if (!isRead &&
                    it->cmd.type == DramCommandType::Read &&
                    now - it->tick < cyc(tm_.tRTW)) {
                    err << "tRTW violated; ";
                }
                break;
            }
        }
        // Write-to-read turnaround within the same rank.
        if (isRead) {
            const auto *w =
                lastOf(DramCommandType::Write, cmd.rank, 0, true);
            if (w && now - w->tick <
                         cyc(tm_.tCWL + tm_.tBURST + tm_.tWTR)) {
                err << "tWTR violated; ";
            }
        }
        // Data-bus overlap.
        const Tick dataStart =
            now + cyc(isRead ? tm_.tCAS : tm_.tCWL);
        if (dataStart < lastCasEnd_[0])
            err << "data bus overlap; ";
        break;
      }

      case DramCommandType::Precharge: {
        if (!bankOpen_[bankIdx])
            err << "PRE to closed bank; ";
        if (gap(lastOf(DramCommandType::Activate, cmd.rank, cmd.bank)) <
            cyc(tm_.tRAS)) {
            err << "tRAS violated; ";
        }
        if (gap(lastOf(DramCommandType::Read, cmd.rank, cmd.bank)) <
            cyc(tm_.tRTP)) {
            err << "tRTP violated; ";
        }
        const auto *w = lastOf(DramCommandType::Write, cmd.rank, cmd.bank);
        if (w && now - w->tick < cyc(tm_.tCWL + tm_.tBURST + tm_.tWR))
            err << "write recovery violated; ";
        break;
      }

      case DramCommandType::Refresh: {
        for (std::uint32_t b = 0; b < geom_.banksPerRank; ++b) {
            if (bankOpen_[cmd.rank * geom_.banksPerRank + b])
                err << "REF with open bank; ";
        }
        if (gap(lastOf(DramCommandType::Precharge, cmd.rank, 0, true)) <
            cyc(tm_.tRP)) {
            err << "tRP before REF violated; ";
        }
        break;
      }
    }

    const std::string msg = err.str();
    if (!msg.empty())
        return msg;

    // Accept: apply state.
    switch (cmd.type) {
      case DramCommandType::Activate:
        bankOpen_[bankIdx] = true;
        break;
      case DramCommandType::Precharge:
        bankOpen_[bankIdx] = false;
        break;
      case DramCommandType::Read:
        lastCasEnd_[0] = now + clk_.dramToTicks(tm_.tCAS + tm_.tBURST);
        break;
      case DramCommandType::Write:
        lastCasEnd_[0] = now + clk_.dramToTicks(tm_.tCWL + tm_.tBURST);
        break;
      case DramCommandType::Refresh:
        break;
    }
    history_.push_back({cmd, now});
    if (history_.size() > kHistoryDepth)
        history_.pop_front();
    ++accepted_;
    return {};
}

} // namespace mcsim
