/**
 * @file
 * DramSystem: the set of channels behind one processor chip.
 *
 * Each channel is independent; one memory controller instance drives
 * each channel. This facade owns the channels and exposes aggregate
 * statistics for the bandwidth-utilization figures.
 */

#ifndef CLOUDMC_DRAM_DRAM_SYSTEM_HH
#define CLOUDMC_DRAM_DRAM_SYSTEM_HH

#include <memory>
#include <vector>

#include "channel.hh"
#include "dram_params.hh"

namespace mcsim {

/** All DRAM channels of the simulated system. */
class DramSystem
{
  public:
    DramSystem(const DramGeometry &geom, const DramTimings &timings,
               bool enableRefresh = true,
               const ClockDomains &clk = kBaselineClocks);

    Channel &channel(std::uint32_t c) { return *channels_[c]; }
    const Channel &channel(std::uint32_t c) const { return *channels_[c]; }
    std::uint32_t numChannels() const
    {
        return static_cast<std::uint32_t>(channels_.size());
    }

    const DramGeometry &geometry() const { return geom_; }
    const DramTimings &timings() const { return timings_; }

    void resetStats(Tick now);

    /** Mean data-bus utilization across channels, in [0,1]. */
    double busUtilization(Tick now) const;

  private:
    DramGeometry geom_;
    DramTimings timings_;
    std::vector<std::unique_ptr<Channel>> channels_;
};

} // namespace mcsim

#endif // CLOUDMC_DRAM_DRAM_SYSTEM_HH
