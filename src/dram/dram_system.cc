#include "dram_system.hh"

namespace mcsim {

DramSystem::DramSystem(const DramGeometry &geom, const DramTimings &timings,
                       bool enableRefresh, const ClockDomains &clk)
    : geom_(geom), timings_(timings)
{
    geom_.validate();
    channels_.reserve(geom_.channels);
    for (std::uint32_t c = 0; c < geom_.channels; ++c) {
        channels_.push_back(
            std::make_unique<Channel>(geom_, timings_, enableRefresh, clk));
    }
}

void
DramSystem::resetStats(Tick now)
{
    for (auto &ch : channels_)
        ch->resetStats(now);
}

double
DramSystem::busUtilization(Tick now) const
{
    double sum = 0.0;
    for (const auto &ch : channels_)
        sum += ch->stats().busUtilization(now);
    return channels_.empty() ? 0.0 : sum / channels_.size();
}

} // namespace mcsim
