/**
 * @file
 * Named DRAM device registry: JEDEC speed grades as data, not code.
 *
 * Each entry bundles the timing set (in device clock cycles), the
 * command-bus frequency the cycles are counted in, geometry defaults
 * (bank count, row-buffer size, rows sized so the IO/DMA buffer always
 * fits), and the electrical parameters for the energy model. The
 * experiment layer selects a device by name (--device / spec files)
 * and derives the simulation's clock domains from its bus frequency,
 * so a new speed grade is a registry entry away — no constants to
 * touch.
 *
 * Timing sources: JESD79-3F (DDR3), JESD79-4B (DDR4), JESD79-5B
 * (DDR5), JESD209-3C (LPDDR3); ns-specified parameters are converted
 * to cycles at the device's tCK and rounded up, matching datasheet
 * practice. Bus frequencies are stored in integer MHz, so non-integral
 * JEDEC clocks round to the nearest MHz (533.33 -> 533, 666.67 -> 667,
 * 933.33 -> 933): cycle-level timing is exact by construction, and
 * wall-clock / energy figures carry the resulting <= 0.07% scale
 * deviation. Currents are representative per-die values from Micron
 * datasheets (DDR3: MT41J 4Gb; DDR4: MT40A 4Gb; DDR5: 16Gb; LPDDR3:
 * EDF8132A) — suitable for comparing policies, not for sizing power
 * supplies. Bank-group devices (DDR4/DDR5) carry real split timings
 * (tCCD_S/L, tRRD_S/L, tWTR_S/L) honored by the channel model, and
 * LPDDR3 refreshes per bank (REFpb, tRFCpb) with the other banks
 * schedulable throughout.
 */

#ifndef CLOUDMC_DRAM_DEVICES_HH
#define CLOUDMC_DRAM_DEVICES_HH

#include <string>
#include <vector>

#include "dram_params.hh"

namespace mcsim {

/** One named DRAM speed grade. */
struct DramDevice
{
    std::string name;             ///< Registry key, e.g. "DDR4-2400".
    std::uint32_t dataRateMtps;   ///< Data rate in MT/s (2x bus clock).
    std::uint32_t busMhz;         ///< Command-bus (tCK) frequency.
    DramTimings timings;          ///< In device cycles at busMhz.
    DramGeometry geometry;        ///< Defaults; channels stay caller-set.
    DramPowerParams power;        ///< For the TN-41-01-style model.
    std::string source;           ///< Timing provenance note.
};

/** Every registered device, DDR3 grades first, registry order. */
const std::vector<DramDevice> &dramDeviceRegistry();

/** Lookup by name; nullptr when unknown. */
const DramDevice *findDramDevice(const std::string &name);

/** Lookup by name; fatal (user error) when unknown. */
const DramDevice &dramDeviceOrDie(const std::string &name);

} // namespace mcsim

#endif // CLOUDMC_DRAM_DEVICES_HH
