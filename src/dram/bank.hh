/**
 * @file
 * Per-bank DRAM state machine.
 *
 * A bank tracks its open row (if any) and the earliest tick at which
 * each command class may legally be issued to it. The channel layers
 * rank- and bus-level constraints on top.
 */

#ifndef CLOUDMC_DRAM_BANK_HH
#define CLOUDMC_DRAM_BANK_HH

#include <cstdint>

#include "common/types.hh"

namespace mcsim {

/** DRAM bank timing/occupancy state. */
class Bank
{
  public:
    static constexpr std::uint64_t kNoRow = ~std::uint64_t{0};

    bool isOpen() const { return openRow_ != kNoRow; }
    std::uint64_t openRow() const { return openRow_; }

    Tick actAllowedAt() const { return actAllowedAt_; }
    Tick rdAllowedAt() const { return rdAllowedAt_; }
    Tick wrAllowedAt() const { return wrAllowedAt_; }
    Tick preAllowedAt() const { return preAllowedAt_; }

    /** Number of column accesses to the currently open row. */
    std::uint32_t accessesThisActivation() const { return accesses_; }

    /** Tick of the most recent column access (for timer policies). */
    Tick lastAccessAt() const { return lastAccessAt_; }

    /** Tick of the activate that opened the current row. */
    Tick activatedAt() const { return activatedAt_; }

    /** Apply an activate issued at @p now. */
    void
    activate(std::uint64_t row, Tick now, TickSpan rcdTicks,
             TickSpan rasTicks, TickSpan rcTicks)
    {
        openRow_ = row;
        activatedAt_ = now;
        lastAccessAt_ = now;
        accesses_ = 0;
        rdAllowedAt_ = maxT(rdAllowedAt_, now + rcdTicks);
        wrAllowedAt_ = maxT(wrAllowedAt_, now + rcdTicks);
        preAllowedAt_ = maxT(preAllowedAt_, now + rasTicks);
        actAllowedAt_ = maxT(actAllowedAt_, now + rcTicks);
    }

    /** Apply a column read issued at @p now. */
    void
    read(Tick now, TickSpan rtpTicks)
    {
        ++accesses_;
        lastAccessAt_ = now;
        preAllowedAt_ = maxT(preAllowedAt_, now + rtpTicks);
    }

    /** Apply a column write issued at @p now. */
    void
    write(Tick now, TickSpan writeRecoveryTicks)
    {
        ++accesses_;
        lastAccessAt_ = now;
        preAllowedAt_ = maxT(preAllowedAt_, now + writeRecoveryTicks);
    }

    /** Apply a precharge issued at @p now. */
    void
    precharge(Tick now, TickSpan rpTicks)
    {
        openRow_ = kNoRow;
        accesses_ = 0;
        actAllowedAt_ = maxT(actAllowedAt_, now + rpTicks);
    }

    /** Push the earliest-activate time forward (refresh). */
    void
    blockUntil(Tick t)
    {
        actAllowedAt_ = maxT(actAllowedAt_, t);
    }

  private:
    static Tick maxT(Tick a, Tick b) { return a > b ? a : b; }

    std::uint64_t openRow_ = kNoRow;
    std::uint32_t accesses_ = 0;
    Tick actAllowedAt_;
    Tick rdAllowedAt_;
    Tick wrAllowedAt_;
    Tick preAllowedAt_;
    Tick lastAccessAt_;
    Tick activatedAt_;
};

} // namespace mcsim

#endif // CLOUDMC_DRAM_BANK_HH
