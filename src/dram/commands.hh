/**
 * @file
 * DRAM command vocabulary shared by the controller and device model.
 */

#ifndef CLOUDMC_DRAM_COMMANDS_HH
#define CLOUDMC_DRAM_COMMANDS_HH

#include <cstdint>

#include "common/types.hh"
#include "dram_params.hh"

namespace mcsim {

/** The command types a memory controller can issue to a channel. */
enum class DramCommandType : std::uint8_t {
    Activate,  ///< Open a row in a bank.
    Read,      ///< Column read from the open row.
    Write,     ///< Column write to the open row.
    Precharge, ///< Close the open row of a bank.
    Refresh,   ///< Refresh: all-bank (bank ignored, every bank must be
               ///< precharged) or per-bank REFpb (bank targeted, only
               ///< it must be precharged), per the device's mode.
};

/** Short mnemonic for logs and traces. */
const char *dramCommandName(DramCommandType t);

/** A fully-specified command. Row/column are ignored where unused. */
struct DramCommand
{
    DramCommandType type = DramCommandType::Activate;
    std::uint32_t rank = 0;
    std::uint32_t bank = 0;   ///< Unused for Refresh.
    std::uint64_t row = 0;    ///< Used by Activate only.
    std::uint32_t column = 0; ///< Used by Read/Write only.

    static DramCommand
    activate(const DramCoord &c)
    {
        return {DramCommandType::Activate, c.rank, c.bank, c.row, 0};
    }

    static DramCommand
    read(const DramCoord &c)
    {
        return {DramCommandType::Read, c.rank, c.bank, c.row, c.column};
    }

    static DramCommand
    write(const DramCoord &c)
    {
        return {DramCommandType::Write, c.rank, c.bank, c.row, c.column};
    }

    static DramCommand
    precharge(std::uint32_t rank, std::uint32_t bank)
    {
        return {DramCommandType::Precharge, rank, bank, 0, 0};
    }

    static DramCommand
    refresh(std::uint32_t rank)
    {
        return {DramCommandType::Refresh, rank, 0, 0, 0};
    }

    /** Per-bank refresh (REFpb) to one bank of @p rank. */
    static DramCommand
    refreshBank(std::uint32_t rank, std::uint32_t bank)
    {
        return {DramCommandType::Refresh, rank, bank, 0, 0};
    }
};

} // namespace mcsim

#endif // CLOUDMC_DRAM_COMMANDS_HH
