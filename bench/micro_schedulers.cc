/**
 * @file
 * google-benchmark microbenchmarks of per-cycle scheduler decision
 * cost. The paper argues FR-FCFS's simplicity is a feature; this
 * bench quantifies the software-model analogue: how expensive one
 * choose() call is for each policy as the candidate pool grows.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "mem/factory.hh"
#include "mem/request.hh"

using namespace mcsim;

namespace {

/** Build a deterministic candidate pool of the given size. */
std::pair<std::vector<Candidate>, std::vector<std::unique_ptr<Request>>>
makePool(std::size_t n)
{
    std::vector<std::unique_ptr<Request>> storage;
    std::vector<Candidate> cands;
    for (std::size_t i = 0; i < n; ++i) {
        auto req = std::make_unique<Request>();
        req->id = i;
        req->core = static_cast<CoreId>(i % 16);
        req->arrivedAt = Tick{1000 + i * 7};
        req->coord.rank = i % 2;
        req->coord.bank = (i / 2) % 8;
        req->coord.row = i * 97 % 4096;
        req->isWrite = i % 4 == 0;
        Candidate c;
        c.req = req.get();
        c.cmd = i % 3 == 0 ? DramCommandType::Read
                           : DramCommandType::Activate;
        c.isRowHit = i % 3 == 0;
        c.issuableNow = i % 2 == 0;
        storage.push_back(std::move(req));
        cands.push_back(c);
    }
    return {std::move(cands), std::move(storage)};
}

void
schedulerChoose(benchmark::State &state, SchedulerKind kind)
{
    auto scheduler = makeScheduler(kind, 16);
    auto [cands, storage] = makePool(state.range(0));
    SchedulerContext ctx;
    ctx.readQueueLen = cands.size();
    Tick now{100000};
    for (auto _ : state) {
        benchmark::DoNotOptimize(scheduler->choose(cands, now, ctx));
        now += kBaselineClocks.ticksPerDram;
    }
}

} // namespace

#define SCHED_BENCH(name, kind)                                            \
    BENCHMARK_CAPTURE(schedulerChoose, name, kind)                         \
        ->Arg(4)                                                           \
        ->Arg(16)                                                          \
        ->Arg(64)

SCHED_BENCH(frfcfs, SchedulerKind::FrFcfs);
SCHED_BENCH(fcfs, SchedulerKind::Fcfs);
SCHED_BENCH(fcfs_banks, SchedulerKind::FcfsBanks);
SCHED_BENCH(parbs, SchedulerKind::ParBs);
SCHED_BENCH(atlas, SchedulerKind::Atlas);
SCHED_BENCH(rl, SchedulerKind::Rl);
SCHED_BENCH(fqm, SchedulerKind::Fqm);
SCHED_BENCH(tcm, SchedulerKind::Tcm);
SCHED_BENCH(stfm, SchedulerKind::Stfm);

BENCHMARK_MAIN();
