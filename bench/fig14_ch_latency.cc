/**
 * @file
 * Figure 14: Normalized memory access latency vs number of memory channels.
 * Regenerates the paper's figure rows; see EXPERIMENTS.md for the
 * paper-vs-measured comparison. Flags: --csv, --fast N.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mcsim;
    return bench::figureMain(
        argc, argv, "Figure 14: Normalized memory access latency vs number of memory channels",
        "avg memory access latency", bench::runChannelStudy,
        [](const MetricSet &m) { return m.avgReadLatency; }, true, 3);
}
