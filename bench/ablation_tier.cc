/**
 * @file
 * Tiered-backend ablation: Zipf-skewed address traffic, the three
 * placement policies side by side.
 *
 * The driver draws 64 KiB "objects" from a Zipfian distribution
 * (object 0 hottest), laid out contiguously from address 0 the way a
 * rank-ordered heap is — hot ranks spatially clustered, which is the
 * locality a DAMON-style region monitor exists to exploit. The
 * interleaved static split still spreads that hot head across both
 * tiers at tile granularity, so:
 *
 *  - static_split is the floor — half the hot objects are pinned in
 *    the slow tier, whose throttled queues absorb the skewed load and
 *    stretch the read tail;
 *  - hotness_based should find the hot slow-resident tiles through
 *    the DAMON-style monitor and swap them fast, off-loading the slow
 *    queues (the p99 win is mostly queueing, not raw media latency);
 *  - alloy_cache trades capacity for recency: every slow hit fills a
 *    direct-mapped fast row, great reuse capture at a fill cost.
 *
 * Reported per policy: IPC, mean/p99 read latency (core cycles), the
 * fast-tier hit fraction, the slow-tier read p99, and the migration
 * counters plus copy overhead as a share of DRAM cycles.
 *
 * Usage: ablation_tier [--cycles N] [--threads N] [--theta T]
 *                      [--json PATH] [--csv]
 *        (defaults: 4M measured core cycles — the monitor needs the
 *        placement to converge inside warmup so the measured window
 *        shows steady-state overhead, not the learning ramp — 1
 *        kernel thread, theta 0.99, BENCH_tier.json)
 *
 * Honors CLOUDMC_FAST=<divisor> like the experiment runner (the CI
 * smoke runs with CLOUDMC_FAST=50). The improvement gate (exit 2 when
 * hotness_based fails to beat static_split on p99, or its migration
 * overhead passes 5% of DRAM cycles) arms only on full-length runs: a
 * /50 smoke closes too few monitor windows to be meaningful.
 *
 * Entries are stamped with the git SHA (same resolution chain as
 * kernel_smoke: CLOUDMC_GIT_SHA, GITHUB_SHA, live `git rev-parse`,
 * the configure-time SHA, "unknown").
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.hh"
#include "dram/devices.hh"
#include "mem/backend.hh"
#include "sim/system.hh"
#include "workload/workload.hh"

using namespace mcsim;

namespace {

/**
 * Zipf-skewed object traffic over a tiered address space. All state
 * is per-core (each core owns its RNG stream), so tryNextOpLocal can
 * always succeed and the stream is identical under every kernel.
 */
class ZipfObjectTraffic final : public WorkloadGenerator
{
  public:
    ZipfObjectTraffic(const SimConfig &cfg, std::uint32_t numCores,
                      std::uint64_t capacityBytes, double theta,
                      double memProb)
        : capacity_(capacityBytes), zipf_(kObjects, theta),
          memProb_(memProb)
    {
        for (std::uint32_t c = 0; c < numCores; ++c) {
            CoreState cs;
            cs.rng.reseed(cfg.seed, 0x5851f42d4c957f2dULL + c);
            cores_.push_back(cs);
        }
    }

    const char *name() const override { return "ZipfObject"; }

    Op nextOp(CoreId core) override { return draw(cores_[core]); }

    bool
    tryNextOpLocal(CoreId core, Op &out) override
    {
        out = draw(cores_[core]);
        return true;
    }

    Addr
    nextFetchBlock(CoreId core) override
    {
        // A small per-core code loop: misses once, then lives in L1I.
        CoreState &cs = cores_[core];
        const std::uint64_t block =
            (static_cast<std::uint64_t>(core) * kCodeBlocks) +
            (cs.codePos++ & (kCodeBlocks - 1));
        return block * kBlockBytes;
    }

  private:
    /** Object count / size: a 256 MiB Zipf footprint in 64 KiB
     *  objects — far past the 4 MiB shared L2, so the skewed tail
     *  reaches DRAM, while each object is about one placement tile
     *  (the monitor can move whole objects in single swaps). */
    static constexpr std::uint64_t kObjects = 4096;
    static constexpr std::uint64_t kObjectBytes = 64 * 1024;
    static constexpr std::uint64_t kBlockBytes = 64;
    /** Blocks in one core's code loop (power of two). */
    static constexpr std::uint64_t kCodeBlocks = 64;

    struct CoreState
    {
        Pcg32 rng;
        std::uint64_t codePos = 0;
    };

    /** Object @p i's base address: contiguous rank order, clamped to
     *  the composed space (hot ranks cluster low, like a heap laid
     *  out in allocation order). */
    Addr
    objectBase(std::uint64_t i) const
    {
        const std::uint64_t objectSlots = capacity_ / kObjectBytes;
        return (i % objectSlots) * kObjectBytes;
    }

    Op
    draw(CoreState &cs)
    {
        Op op;
        if (cs.rng.chance(memProb_)) {
            const std::uint64_t obj = zipf_.sample(cs.rng);
            const std::uint64_t block =
                cs.rng.below64(kObjectBytes / kBlockBytes);
            op.kind = cs.rng.chance(0.3) ? Op::Kind::Store
                                         : Op::Kind::Load;
            op.addr = objectBase(obj) + block * kBlockBytes;
        } else {
            op.kind = Op::Kind::Compute;
            op.length = 1 + cs.rng.below(8);
        }
        return op;
    }

    std::uint64_t capacity_;
    ZipfianGenerator zipf_;
    double memProb_;
    std::vector<CoreState> cores_;
};

/** Same resolution chain as kernel_smoke. */
std::string
gitSha()
{
    if (const char *sha = std::getenv("CLOUDMC_GIT_SHA"))
        return sha;
    if (const char *sha = std::getenv("GITHUB_SHA"))
        return sha;
    if (std::FILE *p = popen("git rev-parse HEAD 2>/dev/null", "r")) {
        char buf[64] = {};
        const bool got = std::fgets(buf, sizeof(buf), p) != nullptr;
        const bool clean = pclose(p) == 0;
        if (got && clean) {
            std::string sha(buf);
            while (!sha.empty() &&
                   std::isspace(static_cast<unsigned char>(sha.back()))) {
                sha.pop_back();
            }
            if (sha.size() == 40)
                return sha;
        }
    }
#ifdef CLOUDMC_GIT_SHA_CONFIGURED
    if (CLOUDMC_GIT_SHA_CONFIGURED[0] != '\0')
        return CLOUDMC_GIT_SHA_CONFIGURED;
#endif
    return "unknown";
}

MetricSet
runOnce(const SimConfig &cfg, double theta, double memProb)
{
    // Size the Zipf scatter to the composed (fast + slow) space: the
    // backend is rebuilt by System, but capacity depends only on cfg.
    const std::uint64_t capacity =
        makeMemBackend(cfg, cfg.numCores)->capacityBytes();
    ZipfObjectTraffic traffic(cfg, cfg.numCores, capacity, theta,
                              memProb);
    System sys(cfg, traffic, cfg.numCores);
    return sys.run();
}

struct PolicyResult
{
    const char *name;
    MetricSet m;
    double migrationOverheadPct = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t cycles = 4'000'000;
    std::uint32_t kernelThreads = 1;
    double theta = 0.99;
    std::string jsonPath = "BENCH_tier.json";
    bool csv = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--cycles") == 0 && i + 1 < argc)
            cycles = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            kernelThreads = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (std::strcmp(argv[i], "--theta") == 0 && i + 1 < argc)
            theta = std::strtod(argv[++i], nullptr);
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
        else if (std::strcmp(argv[i], "--csv") == 0)
            csv = true;
    }
    std::uint64_t fastDiv = 1;
    if (const char *env = std::getenv("CLOUDMC_FAST")) {
        const auto v = std::strtoull(env, nullptr, 10);
        if (v >= 1)
            fastDiv = v;
    }
    cycles = std::max<std::uint64_t>(cycles / fastDiv, 10'000);

    SimConfig cfg = SimConfig::baseline();
    cfg.kernelThreads = kernelThreads;
    cfg.warmupCoreCycles = cycles / 4;
    cfg.measureCoreCycles = cycles;
    // A modest MLP window keeps the skewed queues under real
    // pressure; the monitor window is short enough that a /50 smoke
    // run still closes a handful of aggregation windows.
    cfg.core.mlpWindow = 4;
    cfg.tier.enabled = true;
    cfg.tier.monitorSampleEvery = 2;
    cfg.tier.monitorWindowSamples = 512;
    cfg.tier.hotFactor = 1.5;
    const double memProb = 0.25;

    const TierPolicy policies[] = {TierPolicy::StaticSplit,
                                   TierPolicy::HotnessBased,
                                   TierPolicy::AlloyCache};
    std::vector<PolicyResult> results;
    for (TierPolicy policy : policies) {
        SimConfig run = cfg;
        run.tier.policy = policy;
        PolicyResult r;
        r.name = tierPolicyName(policy);
        r.m = runOnce(run, theta, memProb);
        // Copy overhead: DRAM cycles spent moving tier rows, as a
        // share of the total per-queue DRAM cycles in the window.
        const double dramCycles = static_cast<double>(r.m.measuredCycles) *
                                  run.clocks.dramMhz /
                                  run.clocks.coreMhz *
                                  (run.dram.channels * 2);
        r.migrationOverheadPct =
            dramCycles > 0.0
                ? 100.0 * static_cast<double>(r.m.tierMigratedRows) *
                      run.tier.migrationCyclesPerRow / dramCycles
                : 0.0;
        results.push_back(r);
    }
    const PolicyResult &stat = results[0];
    const PolicyResult &hot = results[1];
    const PolicyResult &alloy = results[2];

    const double p99ImprovementPct =
        stat.m.readLatencyP99 > 0.0
            ? 100.0 * (stat.m.readLatencyP99 - hot.m.readLatencyP99) /
                  stat.m.readLatencyP99
            : 0.0;

    if (csv) {
        std::printf("policy,ipc,read_avg_cycles,read_p99_cycles,"
                    "fast_hit_pct,slow_p99_cycles,migrations,"
                    "migrated_rows,migration_overhead_pct\n");
        for (const PolicyResult &r : results) {
            std::printf(
                "%s,%.4f,%.1f,%.1f,%.2f,%.1f,%llu,%llu,%.4f\n", r.name,
                r.m.userIpc, r.m.avgReadLatency, r.m.readLatencyP99,
                r.m.fastTierHitPct, r.m.slowTierReadLatencyP99,
                static_cast<unsigned long long>(r.m.tierMigrations),
                static_cast<unsigned long long>(r.m.tierMigratedRows),
                r.migrationOverheadPct);
        }
    } else {
        std::printf("tier ablation: %s fast tier at %u%%, slow +%u DRAM "
                    "cycles at %u%% bandwidth, Zipf theta %.2f, %llu "
                    "measured core cycles, %u kernel thread(s)\n",
                    cfg.deviceName.c_str(), cfg.tier.fastCapacityPct,
                    cfg.tier.slowLatencyDramCycles, cfg.tier.slowBwPct,
                    theta, static_cast<unsigned long long>(cycles),
                    kernelThreads);
        for (const PolicyResult &r : results) {
            std::printf(
                "  %-13s IPC %.4f, read avg %.1f cy, p99 %.1f cy, "
                "fast hits %.1f%%, slow p99 %.1f cy, %llu migrations "
                "(%llu rows, %.3f%% of DRAM cycles)\n",
                r.name, r.m.userIpc, r.m.avgReadLatency,
                r.m.readLatencyP99, r.m.fastTierHitPct,
                r.m.slowTierReadLatencyP99,
                static_cast<unsigned long long>(r.m.tierMigrations),
                static_cast<unsigned long long>(r.m.tierMigratedRows),
                r.migrationOverheadPct);
        }
        std::printf("  hotness_based p99 improvement over static_split: "
                    "%.1f%%\n",
                    p99ImprovementPct);
    }

    std::FILE *f = std::fopen(jsonPath.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"ablation_tier\",\n"
                 "  \"git_sha\": \"%s\",\n"
                 "  \"device\": \"%s\",\n"
                 "  \"fast_capacity_pct\": %u,\n"
                 "  \"slow_latency_dram_cycles\": %u,\n"
                 "  \"slow_bw_pct\": %u,\n"
                 "  \"zipf_theta\": %.2f,\n"
                 "  \"measure_core_cycles\": %llu,\n"
                 "  \"kernel_threads\": %u,\n"
                 "  \"monitor_window_samples\": %u,\n",
                 gitSha().c_str(), cfg.deviceName.c_str(),
                 cfg.tier.fastCapacityPct, cfg.tier.slowLatencyDramCycles,
                 cfg.tier.slowBwPct, theta,
                 static_cast<unsigned long long>(cycles), kernelThreads,
                 cfg.tier.monitorWindowSamples);
    for (const PolicyResult &r : results) {
        std::fprintf(
            f,
            "  \"%s\": {\n"
            "    \"ipc\": %.4f,\n"
            "    \"read_avg_cycles\": %.2f,\n"
            "    \"read_p99_cycles\": %.2f,\n"
            "    \"fast_tier_hit_pct\": %.2f,\n"
            "    \"slow_tier_read_p99_cycles\": %.2f,\n"
            "    \"migrations\": %llu,\n"
            "    \"migrated_rows\": %llu,\n"
            "    \"migration_overhead_pct\": %.4f\n"
            "  },\n",
            r.name, r.m.userIpc, r.m.avgReadLatency, r.m.readLatencyP99,
            r.m.fastTierHitPct, r.m.slowTierReadLatencyP99,
            static_cast<unsigned long long>(r.m.tierMigrations),
            static_cast<unsigned long long>(r.m.tierMigratedRows),
            r.migrationOverheadPct);
    }
    std::fprintf(f, "  \"hotness_p99_improvement_pct\": %.2f\n}\n",
                 p99ImprovementPct);
    std::fclose(f);

    // The ablation's reason to exist: on a full-length run the
    // monitored policy must beat the static floor on the read tail,
    // and must do it without burning the bus on copies. Short smoke
    // runs only check that all three policies execute.
    if (fastDiv == 1) {
        if (hot.m.readLatencyP99 >= stat.m.readLatencyP99) {
            std::fprintf(
                stderr,
                "hotness_based did not improve p99 (%.1f -> %.1f)\n",
                stat.m.readLatencyP99, hot.m.readLatencyP99);
            return 2;
        }
        if (hot.migrationOverheadPct > 5.0) {
            std::fprintf(stderr,
                         "migration overhead %.2f%% exceeds the 5%% "
                         "budget\n",
                         hot.migrationOverheadPct);
            return 2;
        }
    }
    (void)alloy;
    return 0;
}
