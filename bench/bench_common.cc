#include "bench_common.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mcsim::bench {

std::vector<Series>
runSchedulerStudy(ExperimentRunner &runner)
{
    std::vector<Series> out;
    for (auto kind : kPaperSchedulers) {
        Series s;
        s.label = schedulerKindName(kind);
        SimConfig cfg = SimConfig::baseline();
        cfg.scheduler = kind;
        for (auto wl : kAllWorkloads)
            s.results[wl] = runner.run(wl, cfg);
        out.push_back(std::move(s));
    }
    return out;
}

std::vector<Series>
runPagePolicyStudy(ExperimentRunner &runner)
{
    std::vector<Series> out;
    for (auto kind : kPaperPagePolicies) {
        Series s;
        s.label = pagePolicyKindName(kind);
        SimConfig cfg = SimConfig::baseline();
        cfg.pagePolicy = kind;
        for (auto wl : kAllWorkloads)
            s.results[wl] = runner.run(wl, cfg);
        out.push_back(std::move(s));
    }
    return out;
}

std::map<WorkloadId, MappingScheme>
bestMappingPerWorkload(ExperimentRunner &runner, std::uint32_t channels)
{
    std::map<WorkloadId, MappingScheme> best;
    for (auto wl : kAllWorkloads) {
        double bestIpc = -1.0;
        for (auto scheme : kAllMappingSchemes) {
            SimConfig cfg = SimConfig::baseline();
            cfg.dram.channels = channels;
            cfg.mapping = scheme;
            const MetricSet m = runner.run(wl, cfg);
            if (m.userIpc > bestIpc) {
                bestIpc = m.userIpc;
                best[wl] = scheme;
            }
        }
    }
    return best;
}

std::vector<Series>
runChannelStudy(ExperimentRunner &runner)
{
    std::vector<Series> out;
    {
        Series s;
        s.label = "1_channel";
        const SimConfig cfg = SimConfig::baseline();
        for (auto wl : kAllWorkloads)
            s.results[wl] = runner.run(wl, cfg);
        out.push_back(std::move(s));
    }
    for (std::uint32_t channels : {2u, 4u}) {
        Series s;
        s.label = std::to_string(channels) + "_channel";
        const auto best = bestMappingPerWorkload(runner, channels);
        for (auto wl : kAllWorkloads) {
            SimConfig cfg = SimConfig::baseline();
            cfg.dram.channels = channels;
            cfg.mapping = best.at(wl);
            s.results[wl] = runner.run(wl, cfg);
        }
        out.push_back(std::move(s));
    }
    return out;
}

namespace {

double
categoryAverage(const Series &s, const Series *base, MetricFn metric,
                WorkloadCategory cat)
{
    double sum = 0.0;
    int n = 0;
    for (auto wl : workloadsInCategory(cat)) {
        double v = metric(s.results.at(wl));
        if (base)
            v /= metric(base->results.at(wl));
        sum += v;
        ++n;
    }
    return n ? sum / n : 0.0;
}

} // namespace

void
printFigure(const std::string &title, const std::string &metricName,
            const std::vector<Series> &series, MetricFn metric,
            bool normalizeToFirst, int precision, bool csv)
{
    TextTable table;
    std::vector<std::string> header{"workload"};
    for (const auto &s : series)
        header.push_back(s.label);
    table.setHeader(header);

    const Series *base = normalizeToFirst ? &series.front() : nullptr;
    for (auto wl : kAllWorkloads) {
        std::vector<std::string> row{workloadAcronym(wl)};
        for (const auto &s : series) {
            double v = metric(s.results.at(wl));
            if (base)
                v /= metric(base->results.at(wl));
            row.push_back(TextTable::num(v, precision));
        }
        table.addRow(std::move(row));
    }
    for (auto cat :
         {WorkloadCategory::ScaleOut, WorkloadCategory::Transactional,
          WorkloadCategory::DecisionSupport}) {
        std::vector<std::string> row{std::string("Avg_") +
                                     workloadCategoryAcronym(cat)};
        for (const auto &s : series) {
            row.push_back(TextTable::num(
                categoryAverage(s, base, metric, cat), precision));
        }
        table.addRow(std::move(row));
    }

    if (!csv) {
        std::printf("%s\n%s%s\n", title.c_str(),
                    normalizeToFirst ? "(normalized to the first column) "
                                     : "",
                    metricName.c_str());
    }
    std::printf("%s\n",
                csv ? table.renderCsv().c_str() : table.render().c_str());
}

int
figureMain(int argc, char **argv, const std::string &title,
           const std::string &metricName,
           std::vector<Series> (*study)(ExperimentRunner &),
           MetricFn metric, bool normalizeToFirst, int precision)
{
    bool csv = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0)
            csv = true;
        else if (std::strcmp(argv[i], "--fast") == 0 && i + 1 < argc)
            setenv("CLOUDMC_FAST", argv[++i], 1);
    }
    ExperimentRunner runner;
    const auto series = study(runner);
    printFigure(title, metricName, series, metric, normalizeToFirst,
                precision, csv);
    std::fprintf(stderr, "[bench] %llu simulations run, %llu from cache\n",
                 static_cast<unsigned long long>(runner.simulationsRun()),
                 static_cast<unsigned long long>(runner.cacheHits()));
    return 0;
}

} // namespace mcsim::bench
