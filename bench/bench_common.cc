#include "bench_common.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mcsim::bench {

using Point = ExperimentRunner::Point;

std::vector<Series>
runConfigStudy(ExperimentRunner &runner,
               const std::vector<LabeledConfig> &configs,
               const std::vector<WorkloadId> &workloads)
{
    std::vector<Point> points;
    points.reserve(configs.size() * workloads.size());
    for (const auto &lc : configs) {
        for (auto wl : workloads)
            points.push_back({wl, lc.cfg});
    }
    const auto metrics = runner.runAll(points);

    std::vector<Series> out;
    std::size_t i = 0;
    for (const auto &lc : configs) {
        Series s;
        s.label = lc.label;
        for (auto wl : workloads)
            s.results[wl] = metrics[i++];
        out.push_back(std::move(s));
    }
    return out;
}

void
prefetchSweep(ExperimentRunner &runner,
              const std::vector<SimConfig> &configs,
              const std::vector<WorkloadId> &workloads)
{
    // With caching disabled there is no memo cache to warm: the
    // batch's work would be thrown away and re-simulated by the
    // caller's run() loop.
    if (!runner.cachingEnabled())
        return;
    std::vector<Point> points;
    points.reserve(configs.size() * workloads.size());
    for (const auto &cfg : configs) {
        for (auto wl : workloads)
            points.push_back({wl, cfg});
    }
    (void)runner.runAll(points);
}

std::vector<Series>
runSchedulerStudy(ExperimentRunner &runner)
{
    std::vector<LabeledConfig> configs;
    for (auto kind : kPaperSchedulers) {
        SimConfig cfg = SimConfig::baseline();
        cfg.scheduler = kind;
        configs.push_back({schedulerKindName(kind), cfg});
    }
    return runConfigStudy(runner, configs);
}

std::vector<Series>
runPagePolicyStudy(ExperimentRunner &runner)
{
    std::vector<LabeledConfig> configs;
    for (auto kind : kPaperPagePolicies) {
        SimConfig cfg = SimConfig::baseline();
        cfg.pagePolicy = kind;
        configs.push_back({pagePolicyKindName(kind), cfg});
    }
    return runConfigStudy(runner, configs);
}

std::vector<Series>
runChannelStudy(ExperimentRunner &runner)
{
    // One batch covers the whole study: the 1-channel baseline plus
    // every (workload, scheme) point at 2 and 4 channels. The
    // per-workload best columns are then assembled from the batch
    // results without further simulation.
    std::vector<Point> points;
    for (auto wl : kAllWorkloads)
        points.push_back({wl, SimConfig::baseline()});
    for (std::uint32_t channels : {2u, 4u}) {
        for (auto wl : kAllWorkloads) {
            for (auto scheme : kAllMappingSchemes) {
                SimConfig cfg = SimConfig::baseline();
                cfg.dram.channels = channels;
                cfg.mapping = scheme;
                points.push_back({wl, cfg});
            }
        }
    }
    const auto metrics = runner.runAll(points);

    std::vector<Series> out;
    std::size_t i = 0;
    {
        Series s;
        s.label = "1_channel";
        for (auto wl : kAllWorkloads)
            s.results[wl] = metrics[i++];
        out.push_back(std::move(s));
    }
    for (std::uint32_t channels : {2u, 4u}) {
        Series s;
        s.label = std::to_string(channels) + "_channel";
        for (auto wl : kAllWorkloads) {
            double bestIpc = -1.0;
            MetricSet bestMetrics;
            for (auto scheme : kAllMappingSchemes) {
                (void)scheme;
                const MetricSet &m = metrics[i++];
                if (m.userIpc > bestIpc) {
                    bestIpc = m.userIpc;
                    bestMetrics = m;
                }
            }
            s.results[wl] = bestMetrics;
        }
        out.push_back(std::move(s));
    }
    return out;
}

namespace {

double
categoryAverage(const Series &s, const Series *base, MetricFn metric,
                WorkloadCategory cat)
{
    double sum = 0.0;
    int n = 0;
    for (auto wl : workloadsInCategory(cat)) {
        double v = metric(s.results.at(wl));
        if (base)
            v /= metric(base->results.at(wl));
        sum += v;
        ++n;
    }
    return n ? sum / n : 0.0;
}

} // namespace

void
printFigure(const std::string &title, const std::string &metricName,
            const std::vector<Series> &series, MetricFn metric,
            bool normalizeToFirst, int precision, bool csv)
{
    TextTable table;
    std::vector<std::string> header{"workload"};
    for (const auto &s : series)
        header.push_back(s.label);
    table.setHeader(header);

    const Series *base = normalizeToFirst ? &series.front() : nullptr;
    for (auto wl : kAllWorkloads) {
        std::vector<std::string> row{workloadAcronym(wl)};
        for (const auto &s : series) {
            double v = metric(s.results.at(wl));
            if (base)
                v /= metric(base->results.at(wl));
            row.push_back(TextTable::num(v, precision));
        }
        table.addRow(std::move(row));
    }
    for (auto cat :
         {WorkloadCategory::ScaleOut, WorkloadCategory::Transactional,
          WorkloadCategory::DecisionSupport}) {
        std::vector<std::string> row{std::string("Avg_") +
                                     workloadCategoryAcronym(cat)};
        for (const auto &s : series) {
            row.push_back(TextTable::num(
                categoryAverage(s, base, metric, cat), precision));
        }
        table.addRow(std::move(row));
    }

    if (!csv) {
        std::printf("%s\n%s%s\n", title.c_str(),
                    normalizeToFirst ? "(normalized to the first column) "
                                     : "",
                    metricName.c_str());
    }
    std::printf("%s\n",
                csv ? table.renderCsv().c_str() : table.render().c_str());
}

int
figureMain(int argc, char **argv, const std::string &title,
           const std::string &metricName,
           std::vector<Series> (*study)(ExperimentRunner &),
           MetricFn metric, bool normalizeToFirst, int precision)
{
    bool csv = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0)
            csv = true;
        else if (std::strcmp(argv[i], "--fast") == 0 && i + 1 < argc)
            setenv("CLOUDMC_FAST", argv[++i], 1);
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            setenv("CLOUDMC_THREADS", argv[++i], 1);
    }
    ExperimentRunner runner;
    const auto series = study(runner);
    printFigure(title, metricName, series, metric, normalizeToFirst,
                precision, csv);
    std::fprintf(stderr, "[bench] %llu simulations run, %llu from cache\n",
                 static_cast<unsigned long long>(runner.simulationsRun()),
                 static_cast<unsigned long long>(runner.cacheHits()));
    return 0;
}

} // namespace mcsim::bench
