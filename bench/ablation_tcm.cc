/**
 * @file
 * TCM ablation: the paper's Section 5 excludes Thread Cluster Memory
 * scheduling on the grounds that "fairness is not an issue for
 * scale-out workloads". This bench tests that claim directly: it runs
 * TCM and STFM (the paper's reference [9] fairness scheduler) against
 * FR-FCFS, PAR-BS and ATLAS on all twelve workloads, and reports both
 * throughput (user IPC) and the paper's own fairness
 * quantity (lowest per-core IPC as a fraction of the highest,
 * Section 4.1.1). If the claim holds, TCM should buy no fairness the
 * baseline does not already provide, at equal or lower IPC.
 *
 * Usage: ablation_tcm [--csv] [--fast N]
 */

#include "bench_common.hh"

using namespace mcsim;
using namespace mcsim::bench;

namespace {

std::vector<Series>
runTcmStudy(ExperimentRunner &runner)
{
    std::vector<LabeledConfig> configs;
    for (auto kind : {SchedulerKind::FrFcfs, SchedulerKind::ParBs,
                      SchedulerKind::Atlas, SchedulerKind::Tcm,
                      SchedulerKind::Stfm}) {
        SimConfig cfg = SimConfig::baseline();
        cfg.scheduler = kind;
        configs.push_back({schedulerKindName(kind), cfg});
    }
    return runConfigStudy(runner, configs);
}

} // namespace

int
main(int argc, char **argv)
{
    const int rc = figureMain(
        argc, argv, "TCM ablation (a): user IPC normalized to FR-FCFS",
        "user IPC", runTcmStudy,
        [](const MetricSet &m) { return m.userIpc; },
        /*normalizeToFirst=*/true);
    if (rc != 0)
        return rc;
    return figureMain(
        argc, argv,
        "TCM ablation (b): per-core IPC fairness (min/max, 1.0 = "
        "perfectly even)",
        "min/max per-core IPC", runTcmStudy,
        [](const MetricSet &m) { return m.ipcDisparity; },
        /*normalizeToFirst=*/false);
}
