/**
 * @file
 * Device ablation: the paper's Table 2 fixes DDR3-1600; this study
 * sweeps the whole DRAM device registry (DDR3-1066 through DDR4-2400
 * and LPDDR3-1600) on the otherwise-unchanged baseline and reports
 * how much speed grade actually buys scale-out workloads. The paper's
 * core claim — these workloads underuse the memory system — predicts
 * small IPC spreads across grades; the latency-vs-IPC pair below
 * makes the test directly readable.
 *
 * Each device brings its own JEDEC timing set, bank count, power
 * parameters and command-bus clock; the clock domains (and so the
 * core-cycles-per-DRAM-cycle ratio) are re-derived per device.
 *
 * Usage: ablation_device [--csv] [--fast N] [--threads N]
 */

#include "bench_common.hh"

#include "dram/devices.hh"

using namespace mcsim;
using namespace mcsim::bench;

namespace {

std::vector<Series>
runDeviceStudy(ExperimentRunner &runner)
{
    std::vector<LabeledConfig> configs;
    for (const DramDevice &dev : dramDeviceRegistry()) {
        SimConfig cfg = SimConfig::baseline();
        cfg.applyDevice(dev);
        configs.push_back({dev.name, cfg});
    }
    // DDR3-1600 first so the paper's baseline is the normalization
    // reference.
    for (std::size_t i = 0; i < configs.size(); ++i) {
        if (configs[i].label == "DDR3-1600") {
            std::swap(configs[0], configs[i]);
            break;
        }
    }
    return runConfigStudy(runner, configs);
}

} // namespace

int
main(int argc, char **argv)
{
    int rc = figureMain(
        argc, argv,
        "Device ablation (a): user IPC by DRAM device, normalized to "
        "DDR3-1600",
        "user IPC", runDeviceStudy,
        [](const MetricSet &m) { return m.userIpc; },
        /*normalizeToFirst=*/true);
    if (rc != 0)
        return rc;
    rc = figureMain(
        argc, argv,
        "Device ablation (b): mean read latency (core cycles)",
        "read latency", runDeviceStudy,
        [](const MetricSet &m) { return m.avgReadLatency; },
        /*normalizeToFirst=*/false, /*precision=*/1);
    if (rc != 0)
        return rc;
    return figureMain(
        argc, argv,
        "Device ablation (c): DRAM average power (mW)",
        "avg power", runDeviceStudy,
        [](const MetricSet &m) { return m.dramAvgPowerMw; },
        /*normalizeToFirst=*/false, /*precision=*/1);
}
