/**
 * @file
 * Bank-group ablation: now that the channel honors the real DDR4/DDR5
 * split timings (tCCD_S/L, tRRD_S/L, tWTR_S/L), does the placement of
 * the group-select bits matter for the paper's scale-out workloads?
 *
 * Two layouts per grouped device: GroupInterleaved sinks the group
 * bits to block granularity, so a streaming CAS train rotates across
 * bank groups and pays only tCCD_S; GroupPacked keeps the classic
 * contiguous bank field, so a stream stays inside one group and the
 * long tCCD_L spacing binds between its column commands. The two
 * layouts trade off against each other — a gap the old single-tCCD
 * model (which assumed perfect interleaving) could not see at all:
 *
 *  - On the sequential DSP queries (TPC-H), packed loses a few
 *    percent IPC and ~15 cycles of read latency: the stream's CAS
 *    train stays in one group and tCCD_L binds (the (c) table shows
 *    its same-group CAS fraction roughly tripling).
 *  - On the scale-out mixes, interleaving the group bits at block
 *    granularity splinters each stream's row locality across G banks
 *    (more activates, shorter row visits), and packed wins by up to
 *    ~5-12% — bank-group interleaving is not a free lunch.
 *
 * Usage: ablation_bankgroup [--csv] [--fast N] [--threads N]
 */

#include "bench_common.hh"

#include "dram/devices.hh"

using namespace mcsim;
using namespace mcsim::bench;

namespace {

std::vector<Series>
runBankGroupStudy(ExperimentRunner &runner)
{
    std::vector<LabeledConfig> configs;
    for (const char *dev : {"DDR4-2400", "DDR5-4800"}) {
        for (const auto gm : kAllBankGroupMappings) {
            SimConfig cfg = SimConfig::baseline();
            cfg.applyDevice(dramDeviceOrDie(dev));
            cfg.bankGroupMapping = gm;
            const char *tag =
                gm == BankGroupMapping::GroupInterleaved ? "/int"
                                                         : "/pack";
            configs.push_back({std::string(dev) + tag, cfg});
        }
    }
    return runConfigStudy(runner, configs);
}

} // namespace

int
main(int argc, char **argv)
{
    int rc = figureMain(
        argc, argv,
        "Bank-group ablation (a): user IPC by group-bit placement, "
        "normalized to DDR4-2400 group-interleaved",
        "user IPC", runBankGroupStudy,
        [](const MetricSet &m) { return m.userIpc; },
        /*normalizeToFirst=*/true);
    if (rc != 0)
        return rc;
    rc = figureMain(
        argc, argv,
        "Bank-group ablation (b): mean read latency (core cycles)",
        "read latency", runBankGroupStudy,
        [](const MetricSet &m) { return m.avgReadLatency; },
        /*normalizeToFirst=*/false, /*precision=*/1);
    if (rc != 0)
        return rc;
    return figureMain(
        argc, argv,
        "Bank-group ablation (c): same-bank-group CAS fraction (%), "
        "the population tCCD_L spaces",
        "same-group CAS %", runBankGroupStudy,
        [](const MetricSet &m) { return m.sameGroupCasPct; },
        /*normalizeToFirst=*/false, /*precision=*/1);
}
