/**
 * @file
 * Energy ablation: the paper's Section 5 defers energy and power to
 * future work while arguing that the best-performing techniques "are
 * also the simplest to implement and hence would also reduce overall
 * energy and power consumption". This bench quantifies the DRAM side:
 * estimated DRAM core energy (dram/energy.hh) per scheduler and per
 * page policy, normalized to the baseline. The scheduler claim is
 * about controller logic energy, which the simulator cannot see; the
 * page-policy claim is directly measurable as activate/precharge and
 * standby energy.
 *
 * Usage: ablation_energy [--csv] [--fast N]
 */

#include "bench_common.hh"

using namespace mcsim;
using namespace mcsim::bench;

namespace {

std::vector<Series>
runSchedulerEnergy(ExperimentRunner &runner)
{
    std::vector<LabeledConfig> configs;
    for (auto kind : kPaperSchedulers) {
        SimConfig cfg = SimConfig::baseline();
        cfg.scheduler = kind;
        configs.push_back({schedulerKindName(kind), cfg});
    }
    return runConfigStudy(runner, configs);
}

std::vector<Series>
runPolicyEnergy(ExperimentRunner &runner)
{
    std::vector<LabeledConfig> configs;
    for (auto kind :
         {PagePolicyKind::OpenAdaptive, PagePolicyKind::CloseAdaptive,
          PagePolicyKind::Rbpp, PagePolicyKind::Abpp,
          PagePolicyKind::Timer, PagePolicyKind::History}) {
        SimConfig cfg = SimConfig::baseline();
        cfg.pagePolicy = kind;
        configs.push_back({pagePolicyKindName(kind), cfg});
    }
    return runConfigStudy(runner, configs);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto energy = [](const MetricSet &m) { return m.dramEnergyNj; };
    const int rc = figureMain(
        argc, argv,
        "Energy ablation (a): DRAM energy by scheduler, normalized to "
        "FR-FCFS",
        "DRAM energy", runSchedulerEnergy, energy,
        /*normalizeToFirst=*/true);
    if (rc != 0)
        return rc;
    return figureMain(
        argc, argv,
        "Energy ablation (b): DRAM energy by page policy, normalized "
        "to OpenAdaptive",
        "DRAM energy", runPolicyEnergy, energy,
        /*normalizeToFirst=*/true);
}
