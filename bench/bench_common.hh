/**
 * @file
 * Shared machinery for the per-figure bench binaries: the scheduler /
 * page-policy / channel sweeps behind the paper's figures, and the
 * table printer that emits the same rows the paper reports.
 *
 * All binaries share one on-disk results cache (see ExperimentRunner),
 * so the full simulation set runs once regardless of which bench
 * binary is invoked first.
 */

#ifndef CLOUDMC_BENCH_BENCH_COMMON_HH
#define CLOUDMC_BENCH_BENCH_COMMON_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/experiment.hh"

namespace mcsim::bench {

/** Extracts the figure's metric from one run's results. */
using MetricFn = std::function<double(const MetricSet &)>;

/** One column of a figure: a configuration label and its per-workload
 *  results keyed by WorkloadId. */
struct Series
{
    std::string label;
    std::map<WorkloadId, MetricSet> results;
};

/** One column of a custom study: a label and its configuration. */
struct LabeledConfig
{
    std::string label;
    SimConfig cfg;
};

/**
 * Run one series per labeled configuration across @p workloads,
 * submitting the whole sweep as a single parallel batch.
 */
std::vector<Series>
runConfigStudy(ExperimentRunner &runner,
               const std::vector<LabeledConfig> &configs,
               const std::vector<WorkloadId> &workloads = {
                   kAllWorkloads.begin(), kAllWorkloads.end()});

/**
 * Warm the runner's memo cache with every (workload, config) point of
 * a sweep in one parallel batch, so subsequent serial run() calls all
 * hit the cache. For benches whose reporting loops are clearer serial.
 */
void prefetchSweep(ExperimentRunner &runner,
                   const std::vector<SimConfig> &configs,
                   const std::vector<WorkloadId> &workloads = {
                       kAllWorkloads.begin(), kAllWorkloads.end()});

/** Run the paper's scheduler sweep (Figures 1-7): 5 schedulers x 12
 *  workloads on the Table 2 baseline. First series is FR-FCFS. */
std::vector<Series> runSchedulerStudy(ExperimentRunner &runner);

/** Run the page-policy sweep (Figures 9-11): 4 policies x 12
 *  workloads under FR-FCFS. First series is OpenAdaptive. */
std::vector<Series> runPagePolicyStudy(ExperimentRunner &runner);

/**
 * Run the multi-channel sweep (Figures 12-14, Table 4). For 2 and 4
 * channels every mapping scheme is simulated; each workload's entry
 * holds its best-IPC scheme (the paper reports best-per-workload).
 * First series is the 1-channel baseline.
 */
std::vector<Series> runChannelStudy(ExperimentRunner &runner);

/**
 * Print a figure: one row per workload plus the three category
 * averages, one column per series. When @p normalizeToFirst is set,
 * values are divided by the first series' value for that workload
 * (the paper's normalization), and category averages are means of the
 * normalized values.
 */
void printFigure(const std::string &title, const std::string &metricName,
                 const std::vector<Series> &series, MetricFn metric,
                 bool normalizeToFirst, int precision = 3,
                 bool csv = false);

/**
 * Standard main() body: handles --csv, --fast N and --threads N
 * flags. Studies submit their whole sweep as one ExperimentRunner
 * batch, so uncached points run on a worker pool (CLOUDMC_THREADS or
 * the hardware concurrency by default).
 */
int figureMain(int argc, char **argv, const std::string &title,
               const std::string &metricName,
               std::vector<Series> (*study)(ExperimentRunner &),
               MetricFn metric, bool normalizeToFirst, int precision = 3);

} // namespace mcsim::bench

#endif // CLOUDMC_BENCH_BENCH_COMMON_HH
