/**
 * @file
 * Dynamic-remap ablation on the stacked backend: Zipf-skewed
 * vault/bank traffic, remap off vs on.
 *
 * The driver is a custom workload that draws (vault, bank) slots from
 * a Zipfian distribution (item 0 hottest) and maps slot index i to
 * vault i / banks, bank i % banks — so the hottest slots all live in
 * vault 0, the next-hottest in vault 1, and so on. That concentrates
 * queue pressure on the low vaults exactly the way a skewed key-value
 * shard does, which is the traffic the remapper exists for: with
 * remapping on, the hot bank slots migrate toward cold vaults and the
 * tail read latency should come down.
 *
 * Reported per variant: IPC, mean/p99 read latency (core cycles), the
 * vault queue imbalance (peak/mean mean read-queue depth), and for the
 * remap-on run the migration counters plus the copy overhead as a
 * percentage of total per-vault DRAM cycles.
 *
 * Usage: ablation_remap [--cycles N] [--threads N] [--theta T]
 *                       [--json PATH] [--csv]
 *        (defaults: 1M measured core cycles, 1 kernel thread,
 *        theta 0.99, BENCH_remap.json)
 *
 * Honors CLOUDMC_FAST=<divisor> like the experiment runner (the CI
 * smoke runs with CLOUDMC_FAST=50). The improvement gate (exit 2 when
 * remap-on p99 fails to beat remap-off) arms only on full-length runs:
 * a /50 smoke closes too few remap windows for the gate to be
 * meaningful there.
 *
 * Entries are stamped with the git SHA (same resolution chain as
 * kernel_smoke: CLOUDMC_GIT_SHA, GITHUB_SHA, live `git rev-parse`,
 * the configure-time SHA, "unknown").
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.hh"
#include "dram/devices.hh"
#include "mem/address_mapping.hh"
#include "sim/system.hh"
#include "workload/workload.hh"

using namespace mcsim;

namespace {

/**
 * Zipf-skewed stacked-DRAM traffic. All state is per-core (each core
 * owns its RNG stream), so tryNextOpLocal can always succeed and the
 * stream is identical under every kernel.
 */
class ZipfVaultTraffic final : public WorkloadGenerator
{
  public:
    ZipfVaultTraffic(const SimConfig &cfg, std::uint32_t numCores,
                     double theta, double memProb)
        : geom_(flattened(cfg.dram)),
          mapper_(geom_, cfg.mapping, cfg.bankGroupMapping),
          banks_(geom_.banksPerRank),
          zipf_(static_cast<std::uint64_t>(geom_.channels) * banks_,
                theta),
          memProb_(memProb)
    {
        for (std::uint32_t c = 0; c < numCores; ++c) {
            CoreState cs;
            cs.rng.reseed(cfg.seed, 0x5851f42d4c957f2dULL + c);
            cores_.push_back(cs);
        }
    }

    const char *name() const override { return "ZipfVault"; }

    Op nextOp(CoreId core) override { return draw(cores_[core]); }

    bool
    tryNextOpLocal(CoreId core, Op &out) override
    {
        out = draw(cores_[core]);
        return true;
    }

    Addr
    nextFetchBlock(CoreId core) override
    {
        // A small per-core code loop: misses once, then lives in L1I.
        CoreState &cs = cores_[core];
        const std::uint64_t block =
            (static_cast<std::uint64_t>(core) * kCodeBlocks) +
            (cs.codePos++ & (kCodeBlocks - 1));
        return block * geom_.blockBytes;
    }

  private:
    /** Blocks in one core's code loop (power of two). */
    static constexpr std::uint64_t kCodeBlocks = 64;

    struct CoreState
    {
        Pcg32 rng;
        std::uint64_t codePos = 0;
    };

    /** The stacked backend's mapper view: one "channel" per vault. */
    static DramGeometry
    flattened(const DramGeometry &g)
    {
        DramGeometry flat = g;
        flat.channels = g.channels * g.vaultsPerStack;
        flat.ranksPerChannel = 1;
        flat.vaultsPerStack = 0;
        flat.validate();
        return flat;
    }

    Op
    draw(CoreState &cs)
    {
        Op op;
        if (cs.rng.chance(memProb_)) {
            const std::uint64_t slot = zipf_.sample(cs.rng);
            DramCoord c;
            c.channel = static_cast<std::uint32_t>(slot / banks_);
            c.bank = static_cast<std::uint32_t>(slot % banks_);
            // Random row/column within the slot: the footprint dwarfs
            // the cache hierarchy, so nearly every reference reaches
            // the vault's controller queue.
            c.row = cs.rng.below64(geom_.rowsPerBank);
            c.column = cs.rng.below(geom_.blocksPerRow());
            op.kind = cs.rng.chance(0.3) ? Op::Kind::Store
                                         : Op::Kind::Load;
            op.addr = mapper_.encode(c);
        } else {
            op.kind = Op::Kind::Compute;
            op.length = 1 + cs.rng.below(8);
        }
        return op;
    }

    DramGeometry geom_;
    AddressMapper mapper_;
    std::uint32_t banks_;
    ZipfianGenerator zipf_;
    double memProb_;
    std::vector<CoreState> cores_;
};

/** Same resolution chain as kernel_smoke. */
std::string
gitSha()
{
    if (const char *sha = std::getenv("CLOUDMC_GIT_SHA"))
        return sha;
    if (const char *sha = std::getenv("GITHUB_SHA"))
        return sha;
    if (std::FILE *p = popen("git rev-parse HEAD 2>/dev/null", "r")) {
        char buf[64] = {};
        const bool got = std::fgets(buf, sizeof(buf), p) != nullptr;
        const bool clean = pclose(p) == 0;
        if (got && clean) {
            std::string sha(buf);
            while (!sha.empty() &&
                   std::isspace(static_cast<unsigned char>(sha.back()))) {
                sha.pop_back();
            }
            if (sha.size() == 40)
                return sha;
        }
    }
#ifdef CLOUDMC_GIT_SHA_CONFIGURED
    if (CLOUDMC_GIT_SHA_CONFIGURED[0] != '\0')
        return CLOUDMC_GIT_SHA_CONFIGURED;
#endif
    return "unknown";
}

MetricSet
runOnce(const SimConfig &cfg, double theta, double memProb)
{
    ZipfVaultTraffic traffic(cfg, cfg.numCores, theta, memProb);
    System sys(cfg, traffic, cfg.numCores);
    return sys.run();
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t cycles = 1'000'000;
    std::uint32_t kernelThreads = 1;
    double theta = 0.99;
    std::string jsonPath = "BENCH_remap.json";
    bool csv = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--cycles") == 0 && i + 1 < argc)
            cycles = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            kernelThreads = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (std::strcmp(argv[i], "--theta") == 0 && i + 1 < argc)
            theta = std::strtod(argv[++i], nullptr);
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
        else if (std::strcmp(argv[i], "--csv") == 0)
            csv = true;
    }
    std::uint64_t fastDiv = 1;
    if (const char *env = std::getenv("CLOUDMC_FAST")) {
        const auto v = std::strtoull(env, nullptr, 10);
        if (v >= 1)
            fastDiv = v;
    }
    cycles = std::max<std::uint64_t>(cycles / fastDiv, 10'000);

    SimConfig cfg = SimConfig::baseline();
    cfg.applyDevice(dramDeviceOrDie("HMC2-8GB"));
    cfg.kernelThreads = kernelThreads;
    cfg.warmupCoreCycles = cycles / 4;
    cfg.measureCoreCycles = cycles;
    // A modest MLP window keeps the skewed vault queues under real
    // pressure; the remap window is short enough that a /50 smoke run
    // still closes a handful of windows.
    cfg.core.mlpWindow = 4;
    cfg.remap.windowAccesses = 2048;
    const double memProb = 0.25;

    SimConfig off = cfg;
    off.remap.enabled = false;
    SimConfig on = cfg;
    on.remap.enabled = true;

    const MetricSet moff = runOnce(off, theta, memProb);
    const MetricSet mon = runOnce(on, theta, memProb);

    const double p99ImprovementPct =
        moff.readLatencyP99 > 0.0
            ? 100.0 * (moff.readLatencyP99 - mon.readLatencyP99) /
                  moff.readLatencyP99
            : 0.0;
    // Copy overhead: DRAM cycles spent migrating rows, as a share of
    // the total per-vault DRAM cycles in the measurement window.
    const std::uint32_t vaults =
        cfg.dram.channels * cfg.dram.vaultsPerStack;
    const double dramCycles =
        static_cast<double>(mon.measuredCycles) * cfg.clocks.dramMhz /
        cfg.clocks.coreMhz;
    const double migrationDramCycles =
        static_cast<double>(mon.remapMigratedRows) *
        cfg.remap.migrationCyclesPerRow;
    const double migrationOverheadPct =
        dramCycles > 0.0
            ? 100.0 * migrationDramCycles / (dramCycles * vaults)
            : 0.0;

    if (csv) {
        std::printf("variant,ipc,read_avg_cycles,read_p99_cycles,"
                    "vault_queue_imbalance,migrations,migrated_rows\n");
        std::printf("remap_off,%.4f,%.1f,%.1f,%.3f,0,0\n", moff.userIpc,
                    moff.avgReadLatency, moff.readLatencyP99,
                    moff.vaultQueueImbalance);
        std::printf("remap_on,%.4f,%.1f,%.1f,%.3f,%llu,%llu\n",
                    mon.userIpc, mon.avgReadLatency, mon.readLatencyP99,
                    mon.vaultQueueImbalance,
                    static_cast<unsigned long long>(mon.remapMigrations),
                    static_cast<unsigned long long>(
                        mon.remapMigratedRows));
    } else {
        std::printf("remap ablation: HMC2-8GB, %u vault(s), Zipf theta "
                    "%.2f, %llu measured core cycles, %u kernel "
                    "thread(s)\n",
                    vaults, theta,
                    static_cast<unsigned long long>(cycles),
                    kernelThreads);
        std::printf("  remap off: IPC %.4f, read avg %.1f cy, p99 %.1f "
                    "cy, vault imbalance %.2fx\n",
                    moff.userIpc, moff.avgReadLatency,
                    moff.readLatencyP99, moff.vaultQueueImbalance);
        std::printf("  remap on:  IPC %.4f, read avg %.1f cy, p99 %.1f "
                    "cy, vault imbalance %.2fx\n",
                    mon.userIpc, mon.avgReadLatency, mon.readLatencyP99,
                    mon.vaultQueueImbalance);
        std::printf("  p99 improvement %.1f%%, %llu migrations (%llu "
                    "rows copied, %.3f%% of DRAM cycles)\n",
                    p99ImprovementPct,
                    static_cast<unsigned long long>(mon.remapMigrations),
                    static_cast<unsigned long long>(mon.remapMigratedRows),
                    migrationOverheadPct);
    }

    std::FILE *f = std::fopen(jsonPath.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
        return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"ablation_remap\",\n"
        "  \"git_sha\": \"%s\",\n"
        "  \"device\": \"HMC2-8GB\",\n"
        "  \"vaults\": %u,\n"
        "  \"zipf_theta\": %.2f,\n"
        "  \"measure_core_cycles\": %llu,\n"
        "  \"kernel_threads\": %u,\n"
        "  \"remap_window_accesses\": %llu,\n"
        "  \"remap_off\": {\n"
        "    \"ipc\": %.4f,\n"
        "    \"read_avg_cycles\": %.2f,\n"
        "    \"read_p99_cycles\": %.2f,\n"
        "    \"vault_queue_imbalance\": %.3f\n"
        "  },\n"
        "  \"remap_on\": {\n"
        "    \"ipc\": %.4f,\n"
        "    \"read_avg_cycles\": %.2f,\n"
        "    \"read_p99_cycles\": %.2f,\n"
        "    \"vault_queue_imbalance\": %.3f,\n"
        "    \"migrations\": %llu,\n"
        "    \"migrated_rows\": %llu,\n"
        "    \"migration_overhead_pct\": %.4f\n"
        "  },\n"
        "  \"p99_improvement_pct\": %.2f\n"
        "}\n",
        gitSha().c_str(), vaults, theta,
        static_cast<unsigned long long>(cycles), kernelThreads,
        static_cast<unsigned long long>(cfg.remap.windowAccesses),
        moff.userIpc, moff.avgReadLatency, moff.readLatencyP99,
        moff.vaultQueueImbalance, mon.userIpc, mon.avgReadLatency,
        mon.readLatencyP99, mon.vaultQueueImbalance,
        static_cast<unsigned long long>(mon.remapMigrations),
        static_cast<unsigned long long>(mon.remapMigratedRows),
        migrationOverheadPct, p99ImprovementPct);
    std::fclose(f);

    // The ablation's reason to exist: on a full-length run the skewed
    // traffic must see its tail improve. Short smoke runs only check
    // that both variants execute.
    if (fastDiv == 1 && mon.readLatencyP99 >= moff.readLatencyP99) {
        std::fprintf(stderr,
                     "remap did not improve p99 (%.1f -> %.1f)\n",
                     moff.readLatencyP99, mon.readLatencyP99);
        return 2;
    }
    return 0;
}
