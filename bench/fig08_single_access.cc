/**
 * @file
 * Figure 8: Percentage of single-access row-buffer activations under
 * the baseline OAPM policy. One bar per workload in the paper; the
 * paper's headline observation is that 77%-90% of activations receive
 * exactly one access before closure.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mcsim;
    bool csv = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0)
            csv = true;
        else if (std::strcmp(argv[i], "--fast") == 0 && i + 1 < argc)
            setenv("CLOUDMC_FAST", argv[++i], 1);
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            setenv("CLOUDMC_THREADS", argv[++i], 1);
    }

    ExperimentRunner runner;
    const SimConfig cfg = SimConfig::baseline();

    std::vector<ExperimentRunner::Point> points;
    for (auto wl : kAllWorkloads)
        points.push_back({wl, cfg});
    const auto metrics = runner.runAll(points);

    TextTable table;
    table.setHeader({"workload", "1-access activations (%)"});
    double lo = 100.0, hi = 0.0;
    std::size_t i = 0;
    for (auto wl : kAllWorkloads) {
        const MetricSet &m = metrics[i++];
        lo = std::min(lo, m.singleAccessPct);
        hi = std::max(hi, m.singleAccessPct);
        table.addRow({workloadAcronym(wl),
                      TextTable::num(m.singleAccessPct, 1)});
    }
    if (!csv) {
        std::printf("Figure 8: Percentage of single-access row-buffer "
                    "activations under OAPM\n");
    }
    std::printf("%s\n",
                csv ? table.renderCsv().c_str() : table.render().c_str());
    std::printf("range: %.1f%% - %.1f%% (paper reports 77%%-90%%)\n", lo,
                hi);
    return 0;
}
