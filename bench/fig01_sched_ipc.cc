/**
 * @file
 * Figure 1: User IPC normalized to FR-FCFS.
 * Regenerates the paper's figure rows; see EXPERIMENTS.md for the
 * paper-vs-measured comparison. Flags: --csv, --fast N.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mcsim;
    return bench::figureMain(
        argc, argv, "Figure 1: User IPC normalized to FR-FCFS",
        "user IPC", bench::runSchedulerStudy,
        [](const MetricSet &m) { return m.userIpc; }, true, 3);
}
