/**
 * @file
 * Table 4: the best-performing multi-channel address mapping scheme
 * for each workload at 2 and 4 channels, plus the full IPC matrix
 * across all schemes so the margins are visible.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mcsim;
    bool csv = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0)
            csv = true;
        else if (std::strcmp(argv[i], "--fast") == 0 && i + 1 < argc)
            setenv("CLOUDMC_FAST", argv[++i], 1);
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            setenv("CLOUDMC_THREADS", argv[++i], 1);
    }

    ExperimentRunner runner;

    // Simulate the full (channels, scheme, workload) matrix in one
    // parallel batch; the table loops below hit the memo cache.
    {
        std::vector<SimConfig> sweep;
        for (std::uint32_t channels : {2u, 4u}) {
            for (auto scheme : kAllMappingSchemes) {
                SimConfig cfg = SimConfig::baseline();
                cfg.dram.channels = channels;
                cfg.mapping = scheme;
                sweep.push_back(cfg);
            }
        }
        bench::prefetchSweep(runner, sweep);
    }

    // Full IPC matrix per channel count.
    for (std::uint32_t channels : {2u, 4u}) {
        TextTable table;
        std::vector<std::string> header{"workload"};
        for (auto scheme : kAllMappingSchemes)
            header.emplace_back(mappingSchemeName(scheme));
        header.emplace_back("best");
        table.setHeader(header);
        for (auto wl : kAllWorkloads) {
            std::vector<std::string> row{workloadAcronym(wl)};
            double bestIpc = -1.0;
            MappingScheme best = MappingScheme::RoRaBaCoCh;
            for (auto scheme : kAllMappingSchemes) {
                SimConfig cfg = SimConfig::baseline();
                cfg.dram.channels = channels;
                cfg.mapping = scheme;
                const MetricSet m = runner.run(wl, cfg);
                row.push_back(TextTable::num(m.userIpc, 3));
                if (m.userIpc > bestIpc) {
                    bestIpc = m.userIpc;
                    best = scheme;
                }
            }
            row.emplace_back(mappingSchemeName(best));
            table.addRow(std::move(row));
        }
        if (!csv) {
            std::printf("Table 4 (%u-channel): user IPC per address "
                        "mapping scheme\n",
                        channels);
        }
        std::printf("%s\n", csv ? table.renderCsv().c_str()
                                : table.render().c_str());
    }
    return 0;
}
