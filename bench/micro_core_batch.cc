/**
 * @file
 * google-benchmark microbenchmark of the batched core/cache hot path:
 * the same instruction stream driven through per-cycle tick() stepping
 * and through the event kernel's tick()+runBatch() pattern, at
 * controlled L1-hit run lengths (how many consecutive core-private
 * instructions separate two batch-breaking L2 accesses).
 *
 * The generator emits, per period: `hitRun` loads that stay inside a
 * 16 KiB ring (L1D-resident after warmup), then one load from a 64 KiB
 * ring that always misses the L1D and hits the warm L2 — the canonical
 * batch terminator. Throughput is reported in simulated core cycles
 * per second (items/s), so the two stepping modes are directly
 * comparable and the batched/per-cycle ratio at each run length shows
 * where the batching machinery's fixed cost amortizes.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "cpu/hierarchy.hh"
#include "workload/workload.hh"

using namespace mcsim;

namespace {

constexpr std::uint64_t kBlock = 64;

/** Deterministic loads with a fixed L1-hit run length between L2 hits. */
class HitRunGenerator : public WorkloadGenerator
{
  public:
    explicit HitRunGenerator(std::uint32_t hitRun) : hitRun_(hitRun) {}

    const char *name() const override { return "hit-run"; }

    Op
    nextOp(CoreId) override
    {
        Op op;
        op.kind = Op::Kind::Load;
        if (phase_ < hitRun_) {
            ++phase_;
            // 256 blocks = 16 KiB: one block per L1D set, resident.
            op.addr = kHitBase + hitPos_++ % 256 * kBlock;
        } else {
            phase_ = 0;
            // 1024 blocks = 64 KiB: four spill blocks rotate through
            // each L1D set, so a spill is always an L1D miss (and a
            // warm L2 hit) — the access that ends a batch.
            op.addr = kSpillBase + spillPos_++ % 1024 * kBlock;
        }
        return op;
    }

    bool
    tryNextOpLocal(CoreId core, Op &out) override
    {
        out = nextOp(core); // Purely per-core state: always local.
        return true;
    }

    Addr
    nextFetchBlock(CoreId) override
    {
        return kCodeBase; // One block: every refetch is an L1I hit.
    }

  private:
    static constexpr Addr kCodeBase = 0;
    static constexpr Addr kHitBase = 1 << 20;
    static constexpr Addr kSpillBase = 2 << 20;

    std::uint32_t hitRun_;
    std::uint32_t phase_ = 0;
    std::uint64_t hitPos_ = 0;
    std::uint64_t spillPos_ = 0;
};

/** A one-core hierarchy whose DRAM fills land on the next step. */
struct Rig
{
    explicit Rig(std::uint32_t hitRun) : gen(hitRun)
    {
        hierarchy =
            std::make_unique<CacheHierarchy>(1, HierarchyConfig{});
        core = std::make_unique<Core>(CoreId{0}, gen, *hierarchy,
                                      CoreConfig{});
        hierarchy->setSendMemRead(
            [this](CoreId, Addr addr) { pending.push_back(addr); });
        hierarchy->setSendMemWrite([](CoreId, Addr) {});
        hierarchy->setWake([this](CoreId, MissKind kind) {
            core->missReturned(kind);
        });
    }

    /** Deliver outstanding fills (cold-start misses only). */
    void
    drain()
    {
        while (!pending.empty()) {
            const Addr addr = pending.back();
            pending.pop_back();
            hierarchy->onMemResponse(CoreId{0}, addr);
        }
    }

    HitRunGenerator gen;
    std::unique_ptr<CacheHierarchy> hierarchy;
    std::unique_ptr<Core> core;
    std::vector<Addr> pending;
};

void
coreStepping(benchmark::State &state, bool batched)
{
    Rig rig(static_cast<std::uint32_t>(state.range(0)));
    Core &core = *rig.core;
    // Warm both rings and the code block into the hierarchy so the
    // timed loop sees only L1 hits and L2 hits, like a steady-state
    // measurement window.
    for (int i = 0; i < 200'000; ++i) {
        core.tick();
        rig.drain();
    }
    const std::uint64_t start = core.syncedCycles().count();
    for (auto _ : state) {
        if (batched) {
            // The event kernel's pattern: account the skipped stall
            // cycles, run the due tick, then batch ahead through the
            // core-private run until the next L2 access latches.
            const CoreCycle due = core.nextActCycle();
            if (core.syncedCycles() < due)
                core.catchUpTo(due);
            core.tick();
            benchmark::DoNotOptimize(core.runBatch(
                CoreCycle{core.syncedCycles().count() + 1'000'000}));
        } else {
            core.tick();
        }
        rig.drain();
    }
    // items/s == simulated core cycles per second for either mode.
    state.SetItemsProcessed(
        static_cast<std::int64_t>(core.syncedCycles().count() - start));
}

} // namespace

BENCHMARK_CAPTURE(coreStepping, per_cycle, false)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);
BENCHMARK_CAPTURE(coreStepping, batched, true)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);

BENCHMARK_MAIN();
