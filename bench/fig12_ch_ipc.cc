/**
 * @file
 * Figure 12: Normalized user IPC vs number of memory channels.
 * Regenerates the paper's figure rows; see EXPERIMENTS.md for the
 * paper-vs-measured comparison. Flags: --csv, --fast N.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mcsim;
    return bench::figureMain(
        argc, argv, "Figure 12: Normalized user IPC vs number of memory channels",
        "user IPC", bench::runChannelStudy,
        [](const MetricSet &m) { return m.userIpc; }, true, 3);
}
