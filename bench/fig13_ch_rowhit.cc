/**
 * @file
 * Figure 13: Normalized row-buffer hit rate vs number of memory channels.
 * Regenerates the paper's figure rows; see EXPERIMENTS.md for the
 * paper-vs-measured comparison. Flags: --csv, --fast N.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mcsim;
    return bench::figureMain(
        argc, argv, "Figure 13: Normalized row-buffer hit rate vs number of memory channels",
        "row-buffer hit rate", bench::runChannelStudy,
        [](const MetricSet &m) { return m.rowHitRatePct; }, true, 3);
}
