/**
 * @file
 * Fairness-scheduler ablation with *measured* slowdowns: the paper's
 * central comparison (FR-FCFS vs the fairness proposals PAR-BS, ATLAS,
 * TCM, STFM) re-run with the metrics those proposals actually
 * optimize — per-core slowdown against alone-run baselines, weighted
 * speedup, harmonic-mean speedup, and maximum slowdown — instead of
 * the crude min/max per-core IPC ratio.
 *
 * Two settings are reported:
 *  - a paper preset (homogeneous scale-out; default WS), where the
 *    paper argues fairness scheduling is a non-issue, and
 *  - a heterogeneous MixedWorkload (light web + heavy TPC-H), the
 *    adversarial home turf those schedulers were designed for.
 *
 * Every (setting, scheduler) point and every alone-run baseline is
 * submitted as one ExperimentRunner::runAll batch and memoized in the
 * shared results cache, so a second invocation recalls everything —
 * baselines included — without simulating.
 *
 * Usage: ablation_fairness [--workload ACR] [--measure N] [--threads N]
 *                          [--csv]
 *        (defaults: WS, 4M measured core cycles, shared default cache)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/experiment.hh"
#include "workload/mixed.hh"

using namespace mcsim;

namespace {

const std::vector<SchedulerKind> kSchedulers = {
    SchedulerKind::FrFcfs, SchedulerKind::ParBs, SchedulerKind::Atlas,
    SchedulerKind::Tcm, SchedulerKind::Stfm};

void
printCase(const char *label, const std::vector<MetricSet> &metrics,
          std::size_t &i, bool csv)
{
    if (csv) {
        for (auto sched : kSchedulers) {
            const MetricSet &m = metrics[i++];
            std::printf("%s,%s,%.4f,%.4f,%.4f,%.4f,%.4f\n", label,
                        schedulerKindName(sched), m.userIpc,
                        m.weightedSpeedup, m.harmonicSpeedup,
                        m.maxSlowdown, m.ipcDisparity);
        }
        return;
    }
    TextTable table;
    table.setHeader({"scheduler", "total IPC", "wtd speedup",
                     "harm speedup", "max slowdown", "min/max IPC"});
    for (auto sched : kSchedulers) {
        const MetricSet &m = metrics[i++];
        table.addRow({schedulerKindName(sched),
                      TextTable::num(m.userIpc, 3),
                      TextTable::num(m.weightedSpeedup, 3),
                      TextTable::num(m.harmonicSpeedup, 3),
                      TextTable::num(m.maxSlowdown, 3),
                      TextTable::num(m.ipcDisparity, 3)});
    }
    std::printf("Fairness ablation: %s\n%s\n", label,
                table.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t measure = 4'000'000;
    std::string workload = "WS";
    bool csv = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--measure") == 0 && i + 1 < argc)
            measure = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            setenv("CLOUDMC_THREADS", argv[++i], 1);
        else if (std::strcmp(argv[i], "--workload") == 0 && i + 1 < argc)
            workload = argv[++i];
        else if (std::strcmp(argv[i], "--csv") == 0)
            csv = true;
    }
    WorkloadId preset = WorkloadId::WS;
    for (auto wl : kAllWorkloads) {
        if (workload == workloadAcronym(wl))
            preset = wl;
    }
    const std::vector<MixPart> mix = {{WorkloadId::WS, 8},
                                      {WorkloadId::TPCHQ6, 8}};
    const std::string mixLabel = "mix WS:8 + TPCH-Q6:8";

    // One batch: (preset + mix) x schedulers, each point carrying its
    // alone-run baseline(s); all memoized in the shared results cache.
    ExperimentRunner runner;
    std::vector<ExperimentRunner::Point> points;
    for (auto sched : kSchedulers) {
        SimConfig cfg = SimConfig::baseline();
        cfg.scheduler = sched;
        cfg.warmupCoreCycles = 1'000'000;
        cfg.measureCoreCycles = measure;
        ExperimentRunner::Point p(preset, cfg);
        ExperimentRunner::attachAloneBaseline(p);
        points.push_back(std::move(p));
    }
    for (auto sched : kSchedulers) {
        SimConfig cfg = SimConfig::baseline();
        cfg.scheduler = sched;
        cfg.warmupCoreCycles = 1'000'000;
        cfg.measureCoreCycles = measure;
        points.push_back(
            ExperimentRunner::mixedFairnessPoint(mix, cfg, 16ull << 30));
    }
    const auto metrics = runner.runAll(points);

    if (csv) {
        std::printf("case,scheduler,ipc,weighted_speedup,"
                    "harmonic_speedup,max_slowdown,ipc_disparity\n");
    }
    std::size_t i = 0;
    printCase((std::string("preset ") + workloadAcronym(preset)).c_str(),
              metrics, i, csv);
    printCase(mixLabel.c_str(), metrics, i, csv);
    std::printf("(%llu simulated, %llu cache hits)\n",
                static_cast<unsigned long long>(runner.simulationsRun()),
                static_cast<unsigned long long>(runner.cacheHits()));
    return 0;
}
