/**
 * @file
 * Figure 6: Average write queue length.
 * Regenerates the paper's figure rows; see EXPERIMENTS.md for the
 * paper-vs-measured comparison. Flags: --csv, --fast N.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mcsim;
    return bench::figureMain(
        argc, argv, "Figure 6: Average write queue length",
        "avg write queue length", bench::runSchedulerStudy,
        [](const MetricSet &m) { return m.avgWriteQueue; }, false, 2);
}
