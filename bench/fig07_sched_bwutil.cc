/**
 * @file
 * Figure 7: Memory bandwidth utilization.
 * Regenerates the paper's figure rows; see EXPERIMENTS.md for the
 * paper-vs-measured comparison. Flags: --csv, --fast N.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mcsim;
    return bench::figureMain(
        argc, argv, "Figure 7: Memory bandwidth utilization",
        "memory BW utilization (%)", bench::runSchedulerStudy,
        [](const MetricSet &m) { return m.bwUtilPct; }, false, 1);
}
