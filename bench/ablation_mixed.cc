/**
 * @file
 * Heterogeneous-mix ablation: PAR-BS, ATLAS and TCM were designed for
 * multiprogrammed mixes of different memory intensities — precisely
 * what the paper's homogeneous server workloads are not. This bench
 * runs such mixes (light web workloads sharing the pod with heavy
 * TPC-H scans) and reports throughput plus the fairness quantities the
 * scheduler papers optimize: per-core IPC disparity and the light
 * parts' average IPC. If the fairness schedulers protect the light
 * cores here while changing nothing on the paper's workloads, the
 * paper's "fairness is a non-issue for scale-out" claim is supported
 * by implementations that demonstrably work as designed.
 *
 * The whole (mix, scheduler) matrix is submitted as one
 * ExperimentRunner::runAll batch of custom-generator points, so the
 * simulations run on the worker pool like every other bench sweep.
 * Mixed workloads are not memoized (no preset acronym to key them by).
 *
 * Usage: ablation_mixed [--measure M] (measured core cycles, default 4M)
 *                       [--threads N]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/table.hh"
#include "sim/experiment.hh"
#include "workload/mixed.hh"

using namespace mcsim;

namespace {

struct MixCase
{
    const char *label;
    std::vector<MixPart> parts;
    std::uint32_t lightCores; ///< Cores 0..lightCores-1 are "light".
};

double
avgIpc(const std::vector<double> &perCore, std::uint32_t from,
       std::uint32_t to)
{
    const double sum = std::accumulate(perCore.begin() + from,
                                       perCore.begin() + to, 0.0);
    return sum / static_cast<double>(to - from);
}

std::uint32_t
totalCoresOf(const MixCase &mixCase)
{
    std::uint32_t cores = 0;
    for (const MixPart &part : mixCase.parts)
        cores += part.cores;
    return cores;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t measure = 4'000'000;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--measure") == 0 && i + 1 < argc)
            measure = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            setenv("CLOUDMC_THREADS", argv[++i], 1);
    }

    const std::vector<MixCase> mixes = {
        {"WS:8 + TPCH-Q6:8",
         {{WorkloadId::WS, 8}, {WorkloadId::TPCHQ6, 8}},
         8},
        {"WF:4 + TPCH-Q2:12",
         {{WorkloadId::WF, 4}, {WorkloadId::TPCHQ2, 12}},
         4},
    };
    const std::vector<SchedulerKind> schedulers = {
        SchedulerKind::FrFcfs, SchedulerKind::ParBs, SchedulerKind::Atlas,
        SchedulerKind::Tcm, SchedulerKind::Stfm};

    // One batch covers every (mix, scheduler) point.
    ExperimentRunner runner("-");
    std::vector<ExperimentRunner::Point> points;
    for (const MixCase &mixCase : mixes) {
        const std::uint32_t totalCores = totalCoresOf(mixCase);
        for (auto sched : schedulers) {
            ExperimentRunner::Point p;
            p.cfg = SimConfig::baseline();
            p.cfg.scheduler = sched;
            p.cfg.warmupCoreCycles = 1'000'000;
            p.cfg.measureCoreCycles = measure;
            const auto parts = mixCase.parts;
            p.makeGenerator = [parts] {
                return std::make_unique<MixedWorkload>(parts, 16ull << 30);
            };
            p.customCores = totalCores;
            points.push_back(std::move(p));
        }
    }
    const auto metrics = runner.runAll(points);

    std::size_t i = 0;
    for (const MixCase &mixCase : mixes) {
        const std::uint32_t totalCores = totalCoresOf(mixCase);
        TextTable table;
        table.setHeader({"scheduler", "total IPC", "light-part IPC",
                         "heavy-part IPC", "min/max fairness"});
        for (auto sched : schedulers) {
            const MetricSet &m = metrics[i++];
            table.addRow(
                {schedulerKindName(sched), TextTable::num(m.userIpc, 3),
                 TextTable::num(
                     avgIpc(m.perCoreIpc, 0, mixCase.lightCores), 3),
                 TextTable::num(avgIpc(m.perCoreIpc, mixCase.lightCores,
                                       totalCores),
                                3),
                 TextTable::num(m.ipcDisparity, 3)});
        }
        std::printf("Mixed-workload ablation: %s\n%s\n", mixCase.label,
                    table.render().c_str());
    }
    return 0;
}
