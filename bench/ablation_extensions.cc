/**
 * @file
 * Ablation bench for the design choices DESIGN.md calls out beyond
 * the paper's evaluation:
 *
 *  1. FQM and strict single-queue FCFS schedulers (the paper excludes
 *     both; FQM as dominated, FCFS as evaluating only FCFS_banks).
 *  2. Pure Open / pure Close / Timer page policies versus the
 *     adaptive and predictive policies the paper studies.
 *  3. Write-drain watermark sensitivity (the paper attributes RL's
 *     short write queues to its unified read/write selection).
 *
 * Uses six representative workloads (two per category) to keep the
 * runtime modest.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_common.hh"

using namespace mcsim;

namespace {

constexpr std::array<WorkloadId, 6> kRepWorkloads = {
    WorkloadId::DS,      WorkloadId::WF,    WorkloadId::MS,
    WorkloadId::WSPEC99, WorkloadId::TPCC1, WorkloadId::TPCHQ6};

void
printStudy(const char *title,
           const std::vector<std::pair<std::string, SimConfig>> &configs,
           ExperimentRunner &runner)
{
    // Simulate the whole study in one parallel batch; the reporting
    // loop below then resolves every point from the memo cache.
    std::vector<SimConfig> sweep;
    for (const auto &[label, cfg] : configs)
        sweep.push_back(cfg);
    bench::prefetchSweep(runner, sweep,
                         {kRepWorkloads.begin(), kRepWorkloads.end()});

    TextTable table;
    std::vector<std::string> header{"workload"};
    for (const auto &[label, cfg] : configs)
        header.push_back(label);
    table.setHeader(header);
    for (auto wl : kRepWorkloads) {
        std::vector<std::string> row{workloadAcronym(wl)};
        const double base = runner.run(wl, configs.front().second).userIpc;
        for (const auto &[label, cfg] : configs) {
            row.push_back(
                TextTable::num(runner.run(wl, cfg).userIpc / base, 3));
        }
        table.addRow(std::move(row));
    }
    std::printf("%s (user IPC normalized to the first column)\n%s\n",
                title, table.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--fast") == 0 && i + 1 < argc)
            setenv("CLOUDMC_FAST", argv[++i], 1);
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            setenv("CLOUDMC_THREADS", argv[++i], 1);
    }
    ExperimentRunner runner;

    // 1. Extension schedulers.
    {
        std::vector<std::pair<std::string, SimConfig>> configs;
        for (auto kind : {SchedulerKind::FrFcfs, SchedulerKind::Fcfs,
                          SchedulerKind::FcfsBanks, SchedulerKind::Fqm}) {
            SimConfig cfg = SimConfig::baseline();
            cfg.scheduler = kind;
            configs.emplace_back(schedulerKindName(kind), cfg);
        }
        printStudy("Ablation 1: excluded schedulers", configs, runner);
    }

    // 2. Extension page policies.
    {
        std::vector<std::pair<std::string, SimConfig>> configs;
        for (auto kind :
             {PagePolicyKind::OpenAdaptive, PagePolicyKind::Open,
              PagePolicyKind::Close, PagePolicyKind::Timer}) {
            SimConfig cfg = SimConfig::baseline();
            cfg.pagePolicy = kind;
            configs.emplace_back(pagePolicyKindName(kind), cfg);
        }
        printStudy("Ablation 2: excluded page policies", configs, runner);
    }

    // 3. Write-drain watermark sensitivity.
    {
        std::vector<std::pair<std::string, SimConfig>> configs;
        const std::array<std::pair<std::size_t, std::size_t>, 3> marks = {
            {{32, 8}, {16, 4}, {48, 16}}};
        for (const auto &[high, low] : marks) {
            SimConfig cfg = SimConfig::baseline();
            cfg.controller.writeDrainHigh = high;
            cfg.controller.writeDrainLow = low;
            // The drain watermarks are not part of the cache key, so
            // bypass the cache by perturbing the (cached) seed space:
            // use a distinct seed per watermark configuration.
            cfg.seed = 1000 + high * 10 + low;
            configs.emplace_back(
                "drain" + std::to_string(high) + "/" +
                    std::to_string(low),
                cfg);
        }
        printStudy("Ablation 3: write-drain watermarks", configs, runner);
    }
    return 0;
}
