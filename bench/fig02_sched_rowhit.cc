/**
 * @file
 * Figure 2: Row-buffer hit rate.
 * Regenerates the paper's figure rows; see EXPERIMENTS.md for the
 * paper-vs-measured comparison. Flags: --csv, --fast N.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mcsim;
    return bench::figureMain(
        argc, argv, "Figure 2: Row-buffer hit rate",
        "row-buffer hit rate (%)", bench::runSchedulerStudy,
        [](const MetricSet &m) { return m.rowHitRatePct; }, false, 1);
}
