/**
 * @file
 * Out-of-order hypothesis ablation: the paper's Section 5 limits the
 * study to in-order pods and hypothesizes that "aggressive out-of-order
 * designs might lead to different conclusions about how simple the
 * memory scheduling technique should be and the needed off-chip memory
 * bandwidth due to a potential increase in the MLP".
 *
 * This bench emulates increasingly aggressive cores by widening the
 * per-core MLP window (outstanding load misses: 1 = the paper's
 * in-order pod, 4 and 8 = OoO-like) and re-asks the two questions:
 *
 *  (a) does a 4-channel system start helping scale-out workloads?
 *  (b) does the FR-FCFS vs FCFS_banks gap widen?
 *
 * Usage: ablation_ooo [--fast N]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_common.hh"

using namespace mcsim;

namespace {

constexpr std::array<WorkloadId, 4> kScaleOut = {
    WorkloadId::DS, WorkloadId::WS, WorkloadId::MR, WorkloadId::MS};

constexpr std::array<std::uint32_t, 3> kMlpWindows = {1, 4, 8};

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--fast") == 0 && i + 1 < argc)
            setenv("CLOUDMC_FAST", argv[++i], 1);
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            setenv("CLOUDMC_THREADS", argv[++i], 1);
    }
    ExperimentRunner runner;

    // Simulate every point of both parts in one parallel batch; the
    // reporting loops below then resolve from the memo cache.
    {
        std::vector<SimConfig> sweep;
        for (auto mlp : kMlpWindows) {
            SimConfig one = SimConfig::baseline();
            one.coreMlpOverride = mlp;
            sweep.push_back(one);
            SimConfig four = one;
            four.dram.channels = 4;
            four.mapping = MappingScheme::RoChRaBaCo;
            sweep.push_back(four);
            SimConfig fb = one;
            fb.scheduler = SchedulerKind::FcfsBanks;
            sweep.push_back(fb);
            SimConfig pb = one;
            pb.scheduler = SchedulerKind::ParBs;
            sweep.push_back(pb);
        }
        bench::prefetchSweep(runner, sweep,
                             {kScaleOut.begin(), kScaleOut.end()});
    }

    // (a) Channel-count benefit as MLP grows.
    {
        TextTable table;
        table.setHeader({"workload", "MLP", "1ch IPC", "4ch IPC",
                         "4ch/1ch", "1ch BW%"});
        for (auto wl : kScaleOut) {
            for (auto mlp : kMlpWindows) {
                SimConfig one = SimConfig::baseline();
                one.coreMlpOverride = mlp;
                SimConfig four = one;
                four.dram.channels = 4;
                four.mapping = MappingScheme::RoChRaBaCo;
                const MetricSet m1 = runner.run(wl, one);
                const MetricSet m4 = runner.run(wl, four);
                table.addRow({workloadAcronym(wl), std::to_string(mlp),
                              TextTable::num(m1.userIpc, 3),
                              TextTable::num(m4.userIpc, 3),
                              TextTable::num(m4.userIpc / m1.userIpc, 3),
                              TextTable::num(m1.bwUtilPct, 1)});
            }
        }
        std::printf("OoO ablation (a): channel benefit vs MLP window "
                    "(scale-out workloads)\n%s\n",
                    table.render().c_str());
    }

    // (b) Scheduler sensitivity as MLP grows.
    {
        TextTable table;
        table.setHeader(
            {"workload", "MLP", "FCFS_banks/FR-FCFS", "PAR-BS/FR-FCFS"});
        for (auto wl : kScaleOut) {
            for (auto mlp : kMlpWindows) {
                SimConfig fr = SimConfig::baseline();
                fr.coreMlpOverride = mlp;
                SimConfig fb = fr;
                fb.scheduler = SchedulerKind::FcfsBanks;
                SimConfig pb = fr;
                pb.scheduler = SchedulerKind::ParBs;
                const double ipcFr = runner.run(wl, fr).userIpc;
                table.addRow(
                    {workloadAcronym(wl), std::to_string(mlp),
                     TextTable::num(runner.run(wl, fb).userIpc / ipcFr,
                                    3),
                     TextTable::num(runner.run(wl, pb).userIpc / ipcFr,
                                    3)});
            }
        }
        std::printf("OoO ablation (b): scheduler gaps vs MLP window\n%s\n",
                    table.render().c_str());
    }
    return 0;
}
