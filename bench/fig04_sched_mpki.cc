/**
 * @file
 * Figure 4: L2 misses per kilo user instructions (MPKI).
 * Regenerates the paper's figure rows; see EXPERIMENTS.md for the
 * paper-vs-measured comparison. Flags: --csv, --fast N.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mcsim;
    return bench::figureMain(
        argc, argv, "Figure 4: L2 misses per kilo user instructions (MPKI)",
        "L2 MPKI", bench::runSchedulerStudy,
        [](const MetricSet &m) { return m.l2Mpki; }, false, 1);
}
