/**
 * @file
 * Figure 9: Row-buffer hit rate normalized to OAPM.
 * Regenerates the paper's figure rows; see EXPERIMENTS.md for the
 * paper-vs-measured comparison. Flags: --csv, --fast N.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mcsim;
    return bench::figureMain(
        argc, argv, "Figure 9: Row-buffer hit rate normalized to OAPM",
        "row-buffer hit rate", bench::runPagePolicyStudy,
        [](const MetricSet &m) { return m.rowHitRatePct; }, true, 3);
}
