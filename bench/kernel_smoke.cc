/**
 * @file
 * Event-kernel throughput smoke: runs the Figure 1 configuration (the
 * Table 2 baseline under FR-FCFS) for a fixed cycle budget on both
 * simulation kernels and writes the self-reported throughput to a
 * JSON file, so the bench trajectory accumulates comparable
 * simulated-Mticks/s numbers over time.
 *
 * Two numbers are reported per run:
 *  - event_kernel:     the event-scheduled kernel with idle-skip
 *  - reference_kernel: the pre-refactor tick-by-tick loop (kept in
 *    System as the golden model), i.e. the pre-refactor throughput
 *    measured on the same build, host and config
 *
 * The smoke also cross-checks that both kernels produce bit-identical
 * metrics, the event kernel's core contract.
 *
 * Usage: kernel_smoke [--cycles N] [--workload ACR] [--device DEV]
 *                     [--json PATH]
 *        (defaults: 2M measured core cycles, WS, DDR3-1600,
 *        BENCH_kernel.json)
 *
 * Entries are stamped with the git SHA (CLOUDMC_GIT_SHA or GITHUB_SHA
 * environment variable, "unknown" otherwise) and the device name, so
 * the accumulated perf trajectory is attributable to a commit and a
 * clock-ratio configuration.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dram/devices.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "workload/presets.hh"

using namespace mcsim;

namespace {

struct KernelRun
{
    double wallS = 0.0;
    double mticksPerS = 0.0;
    double coreTicksFrac = 0.0; ///< Core ticks run / eager core ticks.
    double ctlTicksFrac = 0.0;  ///< Controller ticks run / DRAM cycles.
    MetricSet metrics;
    Tick endTick{};
    ClockDomains clk; ///< The grid the system actually ran.
};

KernelRun
runOnce(WorkloadId wl, const DramDevice &dev,
        std::uint64_t measureCycles, bool reference)
{
    SimConfig cfg = SimConfig::baseline();
    cfg.applyDevice(dev);
    cfg.warmupCoreCycles = measureCycles / 4;
    cfg.measureCoreCycles = measureCycles;
    System sys(cfg, workloadPreset(wl));
    sys.useReferenceKernel(reference);
    const auto t0 = std::chrono::steady_clock::now();
    KernelRun r;
    r.metrics = sys.run();
    r.wallS = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    r.endTick = sys.now();
    r.clk = sys.clocks();
    r.mticksPerS =
        static_cast<double>(sys.now().count()) / r.wallS / 1e6;
    const KernelStats &k = sys.kernelStats();
    const double coreCycles =
        static_cast<double>(sys.clocks().ticksToCore(sys.now()).count());
    const double dramCycles =
        static_cast<double>(sys.clocks().ticksToDram(sys.now()).count());
    r.coreTicksFrac = coreCycles > 0.0
                          ? static_cast<double>(k.coreTicksRun) /
                                (coreCycles * sys.numCores())
                          : 0.0;
    r.ctlTicksFrac =
        dramCycles > 0.0 ? static_cast<double>(k.ctlTicksRun) /
                               (dramCycles * sys.numControllers())
                         : 0.0;
    return r;
}

WorkloadId
workloadByAcronym(const std::string &acr)
{
    for (auto wl : kAllWorkloads) {
        if (acr == workloadAcronym(wl))
            return wl;
    }
    std::fprintf(stderr, "unknown workload '%s', using WS\n",
                 acr.c_str());
    return WorkloadId::WS;
}

bool
identical(const MetricSet &a, const MetricSet &b)
{
    return a.userIpc == b.userIpc && a.avgReadLatency == b.avgReadLatency &&
           a.readLatencyP50 == b.readLatencyP50 &&
           a.readLatencyP95 == b.readLatencyP95 &&
           a.readLatencyP99 == b.readLatencyP99 &&
           a.rowHitRatePct == b.rowHitRatePct && a.l2Mpki == b.l2Mpki &&
           a.sameGroupCasPct == b.sameGroupCasPct &&
           a.avgReadQueue == b.avgReadQueue &&
           a.avgWriteQueue == b.avgWriteQueue &&
           a.bwUtilPct == b.bwUtilPct &&
           a.singleAccessPct == b.singleAccessPct &&
           a.ipcDisparity == b.ipcDisparity &&
           a.dramEnergyNj == b.dramEnergyNj &&
           a.dramAvgPowerMw == b.dramAvgPowerMw &&
           a.committedInstructions == b.committedInstructions &&
           a.measuredCycles == b.measuredCycles &&
           a.memReads == b.memReads && a.memWrites == b.memWrites &&
           a.perCoreIpc == b.perCoreIpc &&
           a.perCoreCommitted == b.perCoreCommitted &&
           a.perCoreCycles == b.perCoreCycles;
}

/**
 * Schema-v4 round-trip check: the slowdown/fairness MetricSet fields
 * (weighted/harmonic speedup, max slowdown, the per-core IPC and
 * slowdown lists) must survive the results cache. Runs one tiny
 * fairness point (shared run + alone baseline) against a scratch
 * cache, reloads it with a fresh runner, and compares.
 */
bool
fairnessCacheRoundtrips(WorkloadId wl, const DramDevice &dev,
                        const std::string &cachePath)
{
    std::remove(cachePath.c_str());
    SimConfig cfg = SimConfig::baseline();
    cfg.applyDevice(dev);
    cfg.warmupCoreCycles = 50'000;
    cfg.measureCoreCycles = 150'000;
    ExperimentRunner::Point p(wl, cfg);
    ExperimentRunner::attachAloneBaseline(p);

    MetricSet fresh, cached;
    std::uint64_t rerunSims = 0;
    {
        ExperimentRunner runner(cachePath);
        fresh = runner.runAll({p}, 1).front();
    }
    {
        ExperimentRunner runner(cachePath);
        cached = runner.runAll({p}, 1).front();
        rerunSims = runner.simulationsRun();
    }
    std::remove(cachePath.c_str());

    // The CSV stores ~6 significant digits; compare relatively.
    const auto close = [](double a, double b) {
        return std::fabs(a - b) <= 1e-5 * (std::fabs(b) + 1.0);
    };
    bool ok = rerunSims == 0 && fresh.hasFairness() &&
              cached.hasFairness() &&
              cached.perCoreIpc.size() == fresh.perCoreIpc.size() &&
              cached.perCoreSlowdown.size() ==
                  fresh.perCoreSlowdown.size() &&
              close(cached.weightedSpeedup, fresh.weightedSpeedup) &&
              close(cached.harmonicSpeedup, fresh.harmonicSpeedup) &&
              close(cached.maxSlowdown, fresh.maxSlowdown);
    for (std::size_t i = 0; ok && i < fresh.perCoreSlowdown.size(); ++i) {
        ok = close(cached.perCoreIpc[i], fresh.perCoreIpc[i]) &&
             close(cached.perCoreSlowdown[i], fresh.perCoreSlowdown[i]);
    }
    return ok;
}

/** Commit fingerprint for the perf trajectory (CI exports it). */
const char *
gitSha()
{
    if (const char *sha = std::getenv("CLOUDMC_GIT_SHA"))
        return sha;
    if (const char *sha = std::getenv("GITHUB_SHA"))
        return sha;
    return "unknown";
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t cycles = 2'000'000;
    std::string workload = "WS";
    std::string device = "DDR3-1600";
    std::string jsonPath = "BENCH_kernel.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--cycles") == 0 && i + 1 < argc)
            cycles = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strcmp(argv[i], "--workload") == 0 && i + 1 < argc)
            workload = argv[++i];
        else if (std::strcmp(argv[i], "--device") == 0 && i + 1 < argc)
            device = argv[++i];
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
    }
    const WorkloadId wl = workloadByAcronym(workload);
    const DramDevice &dev = dramDeviceOrDie(device);

    const KernelRun ref = runOnce(wl, dev, cycles, true);
    const KernelRun ev = runOnce(wl, dev, cycles, false);
    const bool bitIdentical =
        identical(ev.metrics, ref.metrics) && ev.endTick == ref.endTick;
    const double speedup =
        ref.mticksPerS > 0.0 ? ev.mticksPerS / ref.mticksPerS : 0.0;
    const bool fairnessRoundtrip =
        fairnessCacheRoundtrips(wl, dev, jsonPath + ".cache.tmp.csv");

    std::printf("kernel_smoke: fig01 config, workload %s, device %s, "
                "%llu measured core cycles\n",
                workload.c_str(), dev.name.c_str(),
                static_cast<unsigned long long>(cycles));
    std::printf("  event kernel:     %7.2f Mticks/s (%.3f s, core ticks "
                "run %.1f%%, ctl ticks run %.1f%%)\n",
                ev.mticksPerS, ev.wallS, 100.0 * ev.coreTicksFrac,
                100.0 * ev.ctlTicksFrac);
    std::printf("  reference kernel: %7.2f Mticks/s (%.3f s)\n",
                ref.mticksPerS, ref.wallS);
    std::printf("  speedup %.2fx, metrics bit-identical: %s\n", speedup,
                bitIdentical ? "yes" : "NO");
    std::printf("  fairness fields survive cache round-trip: %s\n",
                fairnessRoundtrip ? "yes" : "NO");

    const ClockDomains &clk = ev.clk;
    std::FILE *f = std::fopen(jsonPath.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
        return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"kernel_smoke\",\n"
        "  \"config\": \"fig01-baseline-frfcfs\",\n"
        "  \"git_sha\": \"%s\",\n"
        "  \"workload\": \"%s\",\n"
        "  \"device\": \"%s\",\n"
        "  \"clock_ratios\": \"%llu:%llu\",\n"
        "  \"measure_core_cycles\": %llu,\n"
        "  \"sim_ticks\": %llu,\n"
        "  \"event_kernel\": {\n"
        "    \"mticks_per_s\": %.3f,\n"
        "    \"wall_s\": %.4f,\n"
        "    \"core_ticks_run_frac\": %.4f,\n"
        "    \"ctl_ticks_run_frac\": %.4f\n"
        "  },\n"
        "  \"reference_kernel\": {\n"
        "    \"mticks_per_s\": %.3f,\n"
        "    \"wall_s\": %.4f\n"
        "  },\n"
        "  \"speedup_vs_reference\": %.3f,\n"
        "  \"metrics_bit_identical\": %s,\n"
        "  \"fairness_cache_roundtrip\": %s\n"
        "}\n",
        gitSha(), workload.c_str(), dev.name.c_str(),
        static_cast<unsigned long long>(clk.ticksPerCore.count()),
        static_cast<unsigned long long>(clk.ticksPerDram.count()),
        static_cast<unsigned long long>(cycles),
        static_cast<unsigned long long>(ev.endTick.count()), ev.mticksPerS,
        ev.wallS, ev.coreTicksFrac, ev.ctlTicksFrac, ref.mticksPerS,
        ref.wallS, speedup, bitIdentical ? "true" : "false",
        fairnessRoundtrip ? "true" : "false");
    std::fclose(f);
    if (!bitIdentical)
        return 2;
    return fairnessRoundtrip ? 0 : 3;
}
