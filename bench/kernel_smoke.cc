/**
 * @file
 * Event-kernel throughput smoke: runs the Figure 1 configuration (the
 * Table 2 baseline under FR-FCFS) for a fixed cycle budget on both
 * simulation kernels and writes the self-reported throughput to a
 * JSON file, so the bench trajectory accumulates comparable
 * simulated-Mticks/s numbers over time.
 *
 * Two numbers are reported per run:
 *  - event_kernel:     the event-scheduled kernel with idle-skip
 *  - reference_kernel: the pre-refactor tick-by-tick loop (kept in
 *    System as the golden model), i.e. the pre-refactor throughput
 *    measured on the same build, host and config
 *
 * The smoke also cross-checks that both kernels produce bit-identical
 * metrics, the event kernel's core contract.
 *
 * Usage: kernel_smoke [--cycles N] [--workload ACR] [--device DEV]
 *                     [--json PATH] [--check-regression BASELINE]
 *        (defaults: 2M measured core cycles, WS, DDR3-1600,
 *        BENCH_kernel.json)
 *
 * Entries are stamped with the git SHA and the device name, so the
 * accumulated perf trajectory is attributable to a commit and a
 * clock-ratio configuration. The SHA resolution chain (first hit
 * wins): the CLOUDMC_GIT_SHA environment variable (explicit
 * override), GITHUB_SHA (set by CI), `git rev-parse HEAD` run in the
 * current directory at bench time, the SHA CMake captured at
 * configure time (stale across commits without a reconfigure, so it
 * ranks below the live lookup), and finally "unknown" for builds
 * from a tarball with no git anywhere.
 *
 * --check-regression reads the committed BASELINE json (normally the
 * in-tree BENCH_kernel*.json stamped by the last perf-affecting PR)
 * before this run overwrites anything, and exits 4 if the measured
 * speedup_vs_reference fell more than 15% below it. The speedup is a
 * same-host ratio of the two kernels, so the guard transfers across
 * machines of different absolute speed.
 */

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dram/devices.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "workload/presets.hh"

using namespace mcsim;

namespace {

struct KernelRun
{
    double wallS = 0.0;
    double mticksPerS = 0.0;
    double coreTicksFrac = 0.0; ///< Core ticks run / eager core ticks.
    double ctlTicksFrac = 0.0;  ///< Controller ticks run / DRAM cycles.
    double batchedFrac = 0.0;   ///< Cycles run in batches / eager ticks.
    std::uint64_t batchRuns = 0; ///< runBatch() calls that advanced.
    MetricSet metrics;
    Tick endTick{};
    ClockDomains clk; ///< The grid the system actually ran.
};

KernelRun
runOnce(WorkloadId wl, const DramDevice &dev,
        std::uint64_t measureCycles, bool reference)
{
    SimConfig cfg = SimConfig::baseline();
    cfg.applyDevice(dev);
    cfg.warmupCoreCycles = measureCycles / 4;
    cfg.measureCoreCycles = measureCycles;
    System sys(cfg, workloadPreset(wl));
    sys.useReferenceKernel(reference);
    const auto t0 = std::chrono::steady_clock::now();
    KernelRun r;
    r.metrics = sys.run();
    r.wallS = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    r.endTick = sys.now();
    r.clk = sys.clocks();
    r.mticksPerS =
        static_cast<double>(sys.now().count()) / r.wallS / 1e6;
    const KernelStats &k = sys.kernelStats();
    const double coreCycles =
        static_cast<double>(sys.clocks().ticksToCore(sys.now()).count());
    const double dramCycles =
        static_cast<double>(sys.clocks().ticksToDram(sys.now()).count());
    r.coreTicksFrac = coreCycles > 0.0
                          ? static_cast<double>(k.coreTicksRun) /
                                (coreCycles * sys.numCores())
                          : 0.0;
    r.ctlTicksFrac =
        dramCycles > 0.0 ? static_cast<double>(k.ctlTicksRun) /
                               (dramCycles * sys.numControllers())
                         : 0.0;
    r.batchedFrac = coreCycles > 0.0
                        ? static_cast<double>(k.coreCyclesBatched) /
                              (coreCycles * sys.numCores())
                        : 0.0;
    r.batchRuns = k.coreBatchRuns;
    return r;
}

WorkloadId
workloadByAcronym(const std::string &acr)
{
    for (auto wl : kAllWorkloads) {
        if (acr == workloadAcronym(wl))
            return wl;
    }
    std::fprintf(stderr, "unknown workload '%s', using WS\n",
                 acr.c_str());
    return WorkloadId::WS;
}

bool
identical(const MetricSet &a, const MetricSet &b)
{
    return a.userIpc == b.userIpc && a.avgReadLatency == b.avgReadLatency &&
           a.readLatencyP50 == b.readLatencyP50 &&
           a.readLatencyP95 == b.readLatencyP95 &&
           a.readLatencyP99 == b.readLatencyP99 &&
           a.rowHitRatePct == b.rowHitRatePct && a.l2Mpki == b.l2Mpki &&
           a.sameGroupCasPct == b.sameGroupCasPct &&
           a.avgReadQueue == b.avgReadQueue &&
           a.avgWriteQueue == b.avgWriteQueue &&
           a.bwUtilPct == b.bwUtilPct &&
           a.singleAccessPct == b.singleAccessPct &&
           a.ipcDisparity == b.ipcDisparity &&
           a.dramEnergyNj == b.dramEnergyNj &&
           a.dramAvgPowerMw == b.dramAvgPowerMw &&
           a.committedInstructions == b.committedInstructions &&
           a.measuredCycles == b.measuredCycles &&
           a.memReads == b.memReads && a.memWrites == b.memWrites &&
           a.perCoreIpc == b.perCoreIpc &&
           a.perCoreCommitted == b.perCoreCommitted &&
           a.perCoreCycles == b.perCoreCycles;
}

/**
 * Schema-v4 round-trip check: the slowdown/fairness MetricSet fields
 * (weighted/harmonic speedup, max slowdown, the per-core IPC and
 * slowdown lists) must survive the results cache. Runs one tiny
 * fairness point (shared run + alone baseline) against a scratch
 * cache, reloads it with a fresh runner, and compares.
 */
bool
fairnessCacheRoundtrips(WorkloadId wl, const DramDevice &dev,
                        const std::string &cachePath)
{
    std::remove(cachePath.c_str());
    SimConfig cfg = SimConfig::baseline();
    cfg.applyDevice(dev);
    cfg.warmupCoreCycles = 50'000;
    cfg.measureCoreCycles = 150'000;
    ExperimentRunner::Point p(wl, cfg);
    ExperimentRunner::attachAloneBaseline(p);

    MetricSet fresh, cached;
    std::uint64_t rerunSims = 0;
    {
        ExperimentRunner runner(cachePath);
        fresh = runner.runAll({p}, 1).front();
    }
    {
        ExperimentRunner runner(cachePath);
        cached = runner.runAll({p}, 1).front();
        rerunSims = runner.simulationsRun();
    }
    std::remove(cachePath.c_str());

    // The CSV stores ~6 significant digits; compare relatively.
    const auto close = [](double a, double b) {
        return std::fabs(a - b) <= 1e-5 * (std::fabs(b) + 1.0);
    };
    bool ok = rerunSims == 0 && fresh.hasFairness() &&
              cached.hasFairness() &&
              cached.perCoreIpc.size() == fresh.perCoreIpc.size() &&
              cached.perCoreSlowdown.size() ==
                  fresh.perCoreSlowdown.size() &&
              close(cached.weightedSpeedup, fresh.weightedSpeedup) &&
              close(cached.harmonicSpeedup, fresh.harmonicSpeedup) &&
              close(cached.maxSlowdown, fresh.maxSlowdown);
    for (std::size_t i = 0; ok && i < fresh.perCoreSlowdown.size(); ++i) {
        ok = close(cached.perCoreIpc[i], fresh.perCoreIpc[i]) &&
             close(cached.perCoreSlowdown[i], fresh.perCoreSlowdown[i]);
    }
    return ok;
}

/**
 * Commit fingerprint for the perf trajectory. Resolution chain (see
 * the file comment): CLOUDMC_GIT_SHA env, GITHUB_SHA env, a live
 * `git rev-parse HEAD`, the configure-time SHA baked in by CMake,
 * "unknown".
 */
std::string
gitSha()
{
    if (const char *sha = std::getenv("CLOUDMC_GIT_SHA"))
        return sha;
    if (const char *sha = std::getenv("GITHUB_SHA"))
        return sha;
    if (std::FILE *p = popen("git rev-parse HEAD 2>/dev/null", "r")) {
        char buf[64] = {};
        const bool got = std::fgets(buf, sizeof(buf), p) != nullptr;
        const bool clean = pclose(p) == 0;
        if (got && clean) {
            std::string sha(buf);
            while (!sha.empty() &&
                   std::isspace(static_cast<unsigned char>(sha.back()))) {
                sha.pop_back();
            }
            if (sha.size() == 40)
                return sha;
        }
    }
#ifdef CLOUDMC_GIT_SHA_CONFIGURED
    if (CLOUDMC_GIT_SHA_CONFIGURED[0] != '\0')
        return CLOUDMC_GIT_SHA_CONFIGURED;
#endif
    return "unknown";
}

/**
 * Pull speedup_vs_reference out of a previously committed bench JSON.
 * Returns a negative value when the file or the key is missing (the
 * guard then passes trivially — a fresh tree has no baseline yet).
 */
double
baselineSpeedup(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return -1.0;
    std::string text;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    const char *key = "\"speedup_vs_reference\":";
    const std::size_t pos = text.find(key);
    if (pos == std::string::npos)
        return -1.0;
    return std::strtod(text.c_str() + pos + std::strlen(key), nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t cycles = 2'000'000;
    std::string workload = "WS";
    std::string device = "DDR3-1600";
    std::string jsonPath = "BENCH_kernel.json";
    std::string regressionBaseline;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--cycles") == 0 && i + 1 < argc)
            cycles = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strcmp(argv[i], "--workload") == 0 && i + 1 < argc)
            workload = argv[++i];
        else if (std::strcmp(argv[i], "--device") == 0 && i + 1 < argc)
            device = argv[++i];
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
        else if (std::strcmp(argv[i], "--check-regression") == 0 &&
                 i + 1 < argc)
            regressionBaseline = argv[++i];
    }
    const WorkloadId wl = workloadByAcronym(workload);
    const DramDevice &dev = dramDeviceOrDie(device);
    // Read the baseline up front: --json may point at the same file
    // this run is about to overwrite.
    const double baseSpeedup = regressionBaseline.empty()
                                   ? -1.0
                                   : baselineSpeedup(regressionBaseline);

    const KernelRun ref = runOnce(wl, dev, cycles, true);
    const KernelRun ev = runOnce(wl, dev, cycles, false);
    const bool bitIdentical =
        identical(ev.metrics, ref.metrics) && ev.endTick == ref.endTick;
    const double speedup =
        ref.mticksPerS > 0.0 ? ev.mticksPerS / ref.mticksPerS : 0.0;
    const bool fairnessRoundtrip =
        fairnessCacheRoundtrips(wl, dev, jsonPath + ".cache.tmp.csv");

    std::printf("kernel_smoke: fig01 config, workload %s, device %s, "
                "%llu measured core cycles\n",
                workload.c_str(), dev.name.c_str(),
                static_cast<unsigned long long>(cycles));
    std::printf("  event kernel:     %7.2f Mticks/s (%.3f s, core ticks "
                "run %.1f%%, batched %.1f%%, ctl ticks run %.1f%%)\n",
                ev.mticksPerS, ev.wallS, 100.0 * ev.coreTicksFrac,
                100.0 * ev.batchedFrac, 100.0 * ev.ctlTicksFrac);
    std::printf("  reference kernel: %7.2f Mticks/s (%.3f s)\n",
                ref.mticksPerS, ref.wallS);
    std::printf("  speedup %.2fx, metrics bit-identical: %s\n", speedup,
                bitIdentical ? "yes" : "NO");
    std::printf("  fairness fields survive cache round-trip: %s\n",
                fairnessRoundtrip ? "yes" : "NO");

    const ClockDomains &clk = ev.clk;
    std::FILE *f = std::fopen(jsonPath.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
        return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"kernel_smoke\",\n"
        "  \"config\": \"fig01-baseline-frfcfs\",\n"
        "  \"git_sha\": \"%s\",\n"
        "  \"workload\": \"%s\",\n"
        "  \"device\": \"%s\",\n"
        "  \"clock_ratios\": \"%llu:%llu\",\n"
        "  \"measure_core_cycles\": %llu,\n"
        "  \"sim_ticks\": %llu,\n"
        "  \"event_kernel\": {\n"
        "    \"mticks_per_s\": %.3f,\n"
        "    \"wall_s\": %.4f,\n"
        "    \"core_ticks_run_frac\": %.4f,\n"
        "    \"ctl_ticks_run_frac\": %.4f,\n"
        "    \"cycles_batched_frac\": %.4f,\n"
        "    \"batch_runs\": %llu\n"
        "  },\n"
        "  \"reference_kernel\": {\n"
        "    \"mticks_per_s\": %.3f,\n"
        "    \"wall_s\": %.4f\n"
        "  },\n"
        "  \"speedup_vs_reference\": %.3f,\n"
        "  \"metrics_bit_identical\": %s,\n"
        "  \"fairness_cache_roundtrip\": %s\n"
        "}\n",
        gitSha().c_str(), workload.c_str(), dev.name.c_str(),
        static_cast<unsigned long long>(clk.ticksPerCore.count()),
        static_cast<unsigned long long>(clk.ticksPerDram.count()),
        static_cast<unsigned long long>(cycles),
        static_cast<unsigned long long>(ev.endTick.count()), ev.mticksPerS,
        ev.wallS, ev.coreTicksFrac, ev.ctlTicksFrac, ev.batchedFrac,
        static_cast<unsigned long long>(ev.batchRuns), ref.mticksPerS,
        ref.wallS, speedup, bitIdentical ? "true" : "false",
        fairnessRoundtrip ? "true" : "false");
    std::fclose(f);
    if (!bitIdentical)
        return 2;
    if (!fairnessRoundtrip)
        return 3;
    if (baseSpeedup > 0.0) {
        const double floor = 0.85 * baseSpeedup;
        std::printf("  regression guard: measured %.2fx vs baseline "
                    "%.2fx (floor %.2fx): %s\n",
                    speedup, baseSpeedup, floor,
                    speedup >= floor ? "ok" : "REGRESSION");
        if (speedup < floor)
            return 4;
    }
    return 0;
}
