/**
 * @file
 * Event-kernel throughput smoke: runs the Figure 1 configuration (the
 * Table 2 baseline under FR-FCFS) for a fixed cycle budget on both
 * simulation kernels and writes the self-reported throughput to a
 * JSON file, so the bench trajectory accumulates comparable
 * simulated-Mticks/s numbers over time.
 *
 * Two numbers are reported per run:
 *  - event_kernel:     the event-scheduled kernel with idle-skip
 *  - reference_kernel: the pre-refactor tick-by-tick loop (kept in
 *    System as the golden model), i.e. the pre-refactor throughput
 *    measured on the same build, host and config
 *
 * With --kernel-threads N > 1 a third run exercises the epoch-sharded
 * parallel kernel and stamps its throughput plus self_speedup (the
 * parallel/serial event-kernel ratio on this host).
 *
 * The smoke also cross-checks that every kernel produces bit-identical
 * metrics, the event kernel's core contract, and that the fairness
 * (schema v4) and stacked-backend (schema v6) MetricSet fields survive
 * a results-cache round-trip.
 *
 * Usage: kernel_smoke [--cycles N] [--workload ACR] [--device DEV]
 *                     [--channels N] [--kernel-threads N]
 *                     [--json PATH] [--check-regression BASELINE]
 *        (defaults: 2M measured core cycles, WS, DDR3-1600, 1 channel,
 *        1 thread, BENCH_kernel.json)
 *
 * Entries are stamped with the git SHA and the device name, so the
 * accumulated perf trajectory is attributable to a commit and a
 * clock-ratio configuration. The SHA resolution chain (first hit
 * wins): the CLOUDMC_GIT_SHA environment variable (explicit
 * override), GITHUB_SHA (set by CI), `git rev-parse HEAD` run in the
 * current directory at bench time, the SHA CMake captured at
 * configure time (stale across commits without a reconfigure, so it
 * ranks below the live lookup), and finally "unknown" for builds
 * from a tarball with no git anywhere.
 *
 * --check-regression reads the committed BASELINE json (normally the
 * in-tree BENCH_kernel*.json stamped by the last perf-affecting PR)
 * before this run overwrites anything, and exits 4 if the measured
 * speedup_vs_reference fell more than 15% below it — likewise for
 * self_speedup when both the baseline carries one and the host has
 * at least two hardware threads (a single-CPU host cannot exhibit
 * parallel speedup, so the clause would only measure scheduler
 * noise there). The speedups are same-host kernel ratios, so the
 * guard transfers across machines of different absolute speed.
 */

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "dram/devices.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "workload/presets.hh"

using namespace mcsim;

namespace {

struct KernelRun
{
    double wallS = 0.0;
    double mticksPerS = 0.0;
    double coreTicksFrac = 0.0; ///< Core ticks run / eager core ticks.
    double ctlTicksFrac = 0.0;  ///< Controller ticks run / DRAM cycles.
    double batchedFrac = 0.0;   ///< Cycles run in batches / eager ticks.
    std::uint64_t batchRuns = 0; ///< runBatch() calls that advanced.
    MetricSet metrics;
    Tick endTick{};
    ClockDomains clk; ///< The grid the system actually ran.
};

KernelRun
runOnce(WorkloadId wl, const DramDevice &dev,
        std::uint64_t measureCycles, bool reference,
        std::uint32_t channels = 1, std::uint32_t kernelThreads = 1)
{
    SimConfig cfg = SimConfig::baseline();
    cfg.applyDevice(dev);
    cfg.dram.channels = channels;
    cfg.kernelThreads = kernelThreads;
    cfg.warmupCoreCycles = measureCycles / 4;
    cfg.measureCoreCycles = measureCycles;
    System sys(cfg, workloadPreset(wl));
    sys.useReferenceKernel(reference);
    const auto t0 = std::chrono::steady_clock::now();
    KernelRun r;
    r.metrics = sys.run();
    r.wallS = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    r.endTick = sys.now();
    r.clk = sys.clocks();
    r.mticksPerS =
        static_cast<double>(sys.now().count()) / r.wallS / 1e6;
    const KernelStats &k = sys.kernelStats();
    const double coreCycles =
        static_cast<double>(sys.clocks().ticksToCore(sys.now()).count());
    const double dramCycles =
        static_cast<double>(sys.clocks().ticksToDram(sys.now()).count());
    r.coreTicksFrac = coreCycles > 0.0
                          ? static_cast<double>(k.coreTicksRun) /
                                (coreCycles * sys.numCores())
                          : 0.0;
    r.ctlTicksFrac =
        dramCycles > 0.0 ? static_cast<double>(k.ctlTicksRun) /
                               (dramCycles * sys.numControllers())
                         : 0.0;
    r.batchedFrac = coreCycles > 0.0
                        ? static_cast<double>(k.coreCyclesBatched) /
                              (coreCycles * sys.numCores())
                        : 0.0;
    r.batchRuns = k.coreBatchRuns;
    return r;
}

WorkloadId
workloadByAcronym(const std::string &acr)
{
    for (auto wl : kAllWorkloads) {
        if (acr == workloadAcronym(wl))
            return wl;
    }
    std::fprintf(stderr, "unknown workload '%s', using WS\n",
                 acr.c_str());
    return WorkloadId::WS;
}

bool
identical(const MetricSet &a, const MetricSet &b)
{
    return a.userIpc == b.userIpc && a.avgReadLatency == b.avgReadLatency &&
           a.readLatencyP50 == b.readLatencyP50 &&
           a.readLatencyP95 == b.readLatencyP95 &&
           a.readLatencyP99 == b.readLatencyP99 &&
           a.rowHitRatePct == b.rowHitRatePct && a.l2Mpki == b.l2Mpki &&
           a.sameGroupCasPct == b.sameGroupCasPct &&
           a.avgReadQueue == b.avgReadQueue &&
           a.avgWriteQueue == b.avgWriteQueue &&
           a.bwUtilPct == b.bwUtilPct &&
           a.singleAccessPct == b.singleAccessPct &&
           a.ipcDisparity == b.ipcDisparity &&
           a.dramEnergyNj == b.dramEnergyNj &&
           a.dramAvgPowerMw == b.dramAvgPowerMw &&
           a.committedInstructions == b.committedInstructions &&
           a.measuredCycles == b.measuredCycles &&
           a.memReads == b.memReads && a.memWrites == b.memWrites &&
           a.perCoreIpc == b.perCoreIpc &&
           a.perCoreCommitted == b.perCoreCommitted &&
           a.perCoreCycles == b.perCoreCycles;
}

/**
 * Schema-v4 round-trip check: the slowdown/fairness MetricSet fields
 * (weighted/harmonic speedup, max slowdown, the per-core IPC and
 * slowdown lists) must survive the results cache. Runs one tiny
 * fairness point (shared run + alone baseline) against a scratch
 * cache, reloads it with a fresh runner, and compares.
 */
bool
fairnessCacheRoundtrips(WorkloadId wl, const DramDevice &dev,
                        const std::string &cachePath)
{
    std::remove(cachePath.c_str());
    SimConfig cfg = SimConfig::baseline();
    cfg.applyDevice(dev);
    cfg.warmupCoreCycles = 50'000;
    cfg.measureCoreCycles = 150'000;
    ExperimentRunner::Point p(wl, cfg);
    ExperimentRunner::attachAloneBaseline(p);

    MetricSet fresh, cached;
    std::uint64_t rerunSims = 0;
    {
        ExperimentRunner runner(cachePath);
        fresh = runner.runAll({p}, 1).front();
    }
    {
        ExperimentRunner runner(cachePath);
        cached = runner.runAll({p}, 1).front();
        rerunSims = runner.simulationsRun();
    }
    std::remove(cachePath.c_str());

    // The CSV stores ~6 significant digits; compare relatively.
    const auto close = [](double a, double b) {
        return std::fabs(a - b) <= 1e-5 * (std::fabs(b) + 1.0);
    };
    bool ok = rerunSims == 0 && fresh.hasFairness() &&
              cached.hasFairness() &&
              cached.perCoreIpc.size() == fresh.perCoreIpc.size() &&
              cached.perCoreSlowdown.size() ==
                  fresh.perCoreSlowdown.size() &&
              close(cached.weightedSpeedup, fresh.weightedSpeedup) &&
              close(cached.harmonicSpeedup, fresh.harmonicSpeedup) &&
              close(cached.maxSlowdown, fresh.maxSlowdown);
    for (std::size_t i = 0; ok && i < fresh.perCoreSlowdown.size(); ++i) {
        ok = close(cached.perCoreIpc[i], fresh.perCoreIpc[i]) &&
             close(cached.perCoreSlowdown[i], fresh.perCoreSlowdown[i]);
    }
    return ok;
}

/**
 * Schema-v6 round-trip check: the stacked-backend MetricSet fields
 * (per-vault read-queue depths, the vault queue imbalance, and the
 * remap migration counters) must survive the results cache. Runs one
 * tiny stacked point (4 vaults, remapping on) against a scratch
 * cache, reloads it with a fresh runner, and compares.
 */
bool
stackedCacheRoundtrips(WorkloadId wl, const std::string &cachePath)
{
    std::remove(cachePath.c_str());
    SimConfig cfg = SimConfig::baseline();
    cfg.applyDevice(dramDeviceOrDie("HMC2-8GB"));
    cfg.setVaults(4);
    cfg.remap.enabled = true;
    cfg.remap.windowAccesses = 256;
    cfg.warmupCoreCycles = 50'000;
    cfg.measureCoreCycles = 150'000;
    ExperimentRunner::Point p(wl, cfg);

    MetricSet fresh, cached;
    std::uint64_t rerunSims = 0;
    {
        ExperimentRunner runner(cachePath);
        fresh = runner.runAll({p}, 1).front();
    }
    {
        ExperimentRunner runner(cachePath);
        cached = runner.runAll({p}, 1).front();
        rerunSims = runner.simulationsRun();
    }
    std::remove(cachePath.c_str());

    const auto close = [](double a, double b) {
        return std::fabs(a - b) <= 1e-5 * (std::fabs(b) + 1.0);
    };
    bool ok = rerunSims == 0 && fresh.perVaultReadQueue.size() == 4 &&
              cached.perVaultReadQueue.size() == 4 &&
              cached.remapMigrations == fresh.remapMigrations &&
              cached.remapMigratedRows == fresh.remapMigratedRows &&
              close(cached.vaultQueueImbalance,
                    fresh.vaultQueueImbalance);
    for (std::size_t i = 0; ok && i < fresh.perVaultReadQueue.size();
         ++i) {
        ok = close(cached.perVaultReadQueue[i],
                   fresh.perVaultReadQueue[i]);
    }
    return ok;
}

/**
 * Schema-v7 (tiered-backend) acceptance: the tier columns (fast-tier
 * hit fraction, slow-tier read p99, migration counters) must survive
 * the results cache. Runs one tiny tiered point (hotness_based, a
 * monitor window small enough that migrations fire) against a scratch
 * cache, reloads it with a fresh runner, and compares.
 */
bool
tieredCacheRoundtrips(WorkloadId wl, const std::string &cachePath)
{
    std::remove(cachePath.c_str());
    SimConfig cfg = SimConfig::baseline();
    cfg.tier.enabled = true;
    cfg.tier.policy = TierPolicy::HotnessBased;
    cfg.tier.monitorWindowSamples = 64;
    cfg.warmupCoreCycles = 50'000;
    cfg.measureCoreCycles = 150'000;
    ExperimentRunner::Point p(wl, cfg);

    MetricSet fresh, cached;
    std::uint64_t rerunSims = 0;
    {
        ExperimentRunner runner(cachePath);
        fresh = runner.runAll({p}, 1).front();
    }
    {
        ExperimentRunner runner(cachePath);
        cached = runner.runAll({p}, 1).front();
        rerunSims = runner.simulationsRun();
    }
    std::remove(cachePath.c_str());

    const auto close = [](double a, double b) {
        return std::fabs(a - b) <= 1e-5 * (std::fabs(b) + 1.0);
    };
    return rerunSims == 0 && fresh.fastTierHitPct > 0.0 &&
           fresh.slowTierReadLatencyP99 > 0.0 &&
           close(cached.fastTierHitPct, fresh.fastTierHitPct) &&
           close(cached.slowTierReadLatencyP99,
                 fresh.slowTierReadLatencyP99) &&
           cached.tierMigrations == fresh.tierMigrations &&
           cached.tierMigratedRows == fresh.tierMigratedRows;
}

/**
 * Commit fingerprint for the perf trajectory. Resolution chain (see
 * the file comment): CLOUDMC_GIT_SHA env, GITHUB_SHA env, a live
 * `git rev-parse HEAD`, the configure-time SHA baked in by CMake,
 * "unknown".
 */
std::string
gitSha()
{
    if (const char *sha = std::getenv("CLOUDMC_GIT_SHA"))
        return sha;
    if (const char *sha = std::getenv("GITHUB_SHA"))
        return sha;
    if (std::FILE *p = popen("git rev-parse HEAD 2>/dev/null", "r")) {
        char buf[64] = {};
        const bool got = std::fgets(buf, sizeof(buf), p) != nullptr;
        const bool clean = pclose(p) == 0;
        if (got && clean) {
            std::string sha(buf);
            while (!sha.empty() &&
                   std::isspace(static_cast<unsigned char>(sha.back()))) {
                sha.pop_back();
            }
            if (sha.size() == 40)
                return sha;
        }
    }
#ifdef CLOUDMC_GIT_SHA_CONFIGURED
    if (CLOUDMC_GIT_SHA_CONFIGURED[0] != '\0')
        return CLOUDMC_GIT_SHA_CONFIGURED;
#endif
    return "unknown";
}

/**
 * Pull one numeric key out of a previously committed bench JSON.
 * Returns a negative value when the file or the key is missing (the
 * guard then passes trivially — a fresh tree has no baseline yet).
 */
double
baselineValue(const std::string &path, const char *name)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return -1.0;
    std::string text;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    const std::string key = std::string("\"") + name + "\":";
    const std::size_t pos = text.find(key);
    if (pos == std::string::npos)
        return -1.0;
    return std::strtod(text.c_str() + pos + key.size(), nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t cycles = 2'000'000;
    std::string workload = "WS";
    std::string device = "DDR3-1600";
    std::string jsonPath = "BENCH_kernel.json";
    std::string regressionBaseline;
    std::uint32_t channels = 1;
    std::uint32_t kernelThreads = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--cycles") == 0 && i + 1 < argc)
            cycles = std::strtoull(argv[++i], nullptr, 10);
        else if (std::strcmp(argv[i], "--workload") == 0 && i + 1 < argc)
            workload = argv[++i];
        else if (std::strcmp(argv[i], "--device") == 0 && i + 1 < argc)
            device = argv[++i];
        else if (std::strcmp(argv[i], "--channels") == 0 && i + 1 < argc)
            channels = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (std::strcmp(argv[i], "--kernel-threads") == 0 &&
                 i + 1 < argc)
            kernelThreads = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
        else if (std::strcmp(argv[i], "--check-regression") == 0 &&
                 i + 1 < argc)
            regressionBaseline = argv[++i];
    }
    const WorkloadId wl = workloadByAcronym(workload);
    const DramDevice &dev = dramDeviceOrDie(device);
    const unsigned hostHw = std::thread::hardware_concurrency();
    // Read the baseline up front: --json may point at the same file
    // this run is about to overwrite.
    const double baseSpeedup =
        regressionBaseline.empty()
            ? -1.0
            : baselineValue(regressionBaseline, "speedup_vs_reference");
    const double baseSelfSpeedup =
        regressionBaseline.empty()
            ? -1.0
            : baselineValue(regressionBaseline, "self_speedup");
    const double baseHostHw =
        regressionBaseline.empty()
            ? -1.0
            : baselineValue(regressionBaseline, "host_hw_concurrency");

    const KernelRun ref = runOnce(wl, dev, cycles, true, channels);
    const KernelRun ev = runOnce(wl, dev, cycles, false, channels);
    bool bitIdentical =
        identical(ev.metrics, ref.metrics) && ev.endTick == ref.endTick;
    const double speedup =
        ref.mticksPerS > 0.0 ? ev.mticksPerS / ref.mticksPerS : 0.0;

    // The epoch-sharded parallel kernel: measured against the serial
    // event kernel on the same host (self_speedup) and held to the
    // same bit-identity contract as serial-vs-reference.
    KernelRun par;
    double selfSpeedup = 0.0;
    if (kernelThreads > 1) {
        par = runOnce(wl, dev, cycles, false, channels, kernelThreads);
        bitIdentical = bitIdentical && identical(par.metrics, ev.metrics) &&
                       par.endTick == ev.endTick;
        selfSpeedup =
            ev.mticksPerS > 0.0 ? par.mticksPerS / ev.mticksPerS : 0.0;
    }
    const bool fairnessRoundtrip =
        fairnessCacheRoundtrips(wl, dev, jsonPath + ".cache.tmp.csv");
    const bool stackedRoundtrip =
        stackedCacheRoundtrips(wl, jsonPath + ".cache.tmp.csv");
    const bool tieredRoundtrip =
        tieredCacheRoundtrips(wl, jsonPath + ".cache.tmp.csv");

    std::printf("kernel_smoke: fig01 config, workload %s, device %s, "
                "%u channel(s), %llu measured core cycles\n",
                workload.c_str(), dev.name.c_str(), channels,
                static_cast<unsigned long long>(cycles));
    std::printf("  event kernel:     %7.2f Mticks/s (%.3f s, core ticks "
                "run %.1f%%, batched %.1f%%, ctl ticks run %.1f%%)\n",
                ev.mticksPerS, ev.wallS, 100.0 * ev.coreTicksFrac,
                100.0 * ev.batchedFrac, 100.0 * ev.ctlTicksFrac);
    std::printf("  reference kernel: %7.2f Mticks/s (%.3f s)\n",
                ref.mticksPerS, ref.wallS);
    if (kernelThreads > 1) {
        std::printf("  parallel kernel:  %7.2f Mticks/s (%.3f s, %u "
                    "threads, self-speedup %.2fx, host hw %u)\n",
                    par.mticksPerS, par.wallS, kernelThreads, selfSpeedup,
                    hostHw);
    }
    std::printf("  speedup %.2fx, metrics bit-identical: %s\n", speedup,
                bitIdentical ? "yes" : "NO");
    std::printf("  fairness fields survive cache round-trip: %s\n",
                fairnessRoundtrip ? "yes" : "NO");
    std::printf("  stacked fields survive cache round-trip: %s\n",
                stackedRoundtrip ? "yes" : "NO");
    std::printf("  tiered fields survive cache round-trip: %s\n",
                tieredRoundtrip ? "yes" : "NO");

    const ClockDomains &clk = ev.clk;
    std::FILE *f = std::fopen(jsonPath.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
        return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"kernel_smoke\",\n"
        "  \"config\": \"fig01-baseline-frfcfs\",\n"
        "  \"git_sha\": \"%s\",\n"
        "  \"workload\": \"%s\",\n"
        "  \"device\": \"%s\",\n"
        "  \"channels\": %u,\n"
        "  \"clock_ratios\": \"%llu:%llu\",\n"
        "  \"measure_core_cycles\": %llu,\n"
        "  \"sim_ticks\": %llu,\n"
        "  \"threads\": %u,\n"
        "  \"host_hw_concurrency\": %u,\n"
        "  \"event_kernel\": {\n"
        "    \"mticks_per_s\": %.3f,\n"
        "    \"wall_s\": %.4f,\n"
        "    \"core_ticks_run_frac\": %.4f,\n"
        "    \"ctl_ticks_run_frac\": %.4f,\n"
        "    \"cycles_batched_frac\": %.4f,\n"
        "    \"batch_runs\": %llu\n"
        "  },\n"
        "  \"reference_kernel\": {\n"
        "    \"mticks_per_s\": %.3f,\n"
        "    \"wall_s\": %.4f\n"
        "  },\n",
        gitSha().c_str(), workload.c_str(), dev.name.c_str(), channels,
        static_cast<unsigned long long>(clk.ticksPerCore.count()),
        static_cast<unsigned long long>(clk.ticksPerDram.count()),
        static_cast<unsigned long long>(cycles),
        static_cast<unsigned long long>(ev.endTick.count()), kernelThreads,
        hostHw, ev.mticksPerS, ev.wallS, ev.coreTicksFrac, ev.ctlTicksFrac,
        ev.batchedFrac, static_cast<unsigned long long>(ev.batchRuns),
        ref.mticksPerS, ref.wallS);
    if (kernelThreads > 1) {
        std::fprintf(f,
                     "  \"parallel_kernel\": {\n"
                     "    \"mticks_per_s\": %.3f,\n"
                     "    \"wall_s\": %.4f\n"
                     "  },\n"
                     "  \"self_speedup\": %.3f,\n",
                     par.mticksPerS, par.wallS, selfSpeedup);
    }
    std::fprintf(f,
                 "  \"speedup_vs_reference\": %.3f,\n"
                 "  \"metrics_bit_identical\": %s,\n"
                 "  \"fairness_cache_roundtrip\": %s,\n"
                 "  \"stacked_cache_roundtrip\": %s,\n"
                 "  \"tiered_cache_roundtrip\": %s\n"
                 "}\n",
                 speedup, bitIdentical ? "true" : "false",
                 fairnessRoundtrip ? "true" : "false",
                 stackedRoundtrip ? "true" : "false",
                 tieredRoundtrip ? "true" : "false");
    std::fclose(f);
    if (!bitIdentical)
        return 2;
    if (!fairnessRoundtrip)
        return 3;
    if (!stackedRoundtrip)
        return 5;
    if (!tieredRoundtrip)
        return 6;
    if (baseSpeedup > 0.0) {
        const double floor = 0.85 * baseSpeedup;
        std::printf("  regression guard: measured %.2fx vs baseline "
                    "%.2fx (floor %.2fx): %s\n",
                    speedup, baseSpeedup, floor,
                    speedup >= floor ? "ok" : "REGRESSION");
        if (speedup < floor)
            return 4;
    }
    // The self-speedup clause arms only where parallel speedup is
    // physically possible AND the floor is meaningful: an MT run
    // checked against an MT baseline, with both this host and the
    // baseline's stamped host multi-core (a 1-vCPU stamp records
    // self_speedup < 1 and would make the floor vacuous).
    if (kernelThreads > 1 && baseSelfSpeedup > 0.0 && hostHw >= 2 &&
        baseHostHw >= 2.0) {
        const double floor = 0.85 * baseSelfSpeedup;
        std::printf("  self-speedup guard: measured %.2fx vs baseline "
                    "%.2fx (floor %.2fx): %s\n",
                    selfSpeedup, baseSelfSpeedup, floor,
                    selfSpeedup >= floor ? "ok" : "REGRESSION");
        if (selfSpeedup < floor)
            return 4;
    }
    return 0;
}
