/**
 * @file
 * Figure 5: Average read queue length.
 * Regenerates the paper's figure rows; see EXPERIMENTS.md for the
 * paper-vs-measured comparison. Flags: --csv, --fast N.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mcsim;
    return bench::figureMain(
        argc, argv, "Figure 5: Average read queue length",
        "avg read queue length", bench::runSchedulerStudy,
        [](const MetricSet &m) { return m.avgReadQueue; }, false, 2);
}
