/**
 * @file
 * google-benchmark microbenchmark of the epoch-sharded kernel's
 * synchronization skeleton: the per-epoch cost of one SpinBarrier
 * crossing plus the double-buffered EpochStage exchange (core shard
 * stages requests and merges completions, memory shards absorb
 * requests and stage completions), stripped of all simulation work.
 *
 * Swept over shard counts {1, 2, 4, 8} and epoch lengths {8, 32, 128}
 * ticks. The items/s rate is epochs per second; the sim_ticks_per_s
 * counter converts that through the epoch length, showing directly
 * how much simulated time one barrier crossing buys — the number to
 * compare against the serial kernel's Mticks/s when judging whether a
 * configuration can profit from sharding. Epoch length is a config
 * property (the minimum crossbar latency in ticks), so the sweep maps
 * the overhead for crossbars faster and slower than the baseline's 8.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "common/worker_pool.hh"
#include "cpu/crossbar.hh"

using namespace mcsim;

namespace {

struct StagedItem
{
    Tick at;
    std::uint64_t payload;
};

/** Traffic volume per epoch per side: a handful of entries, like a
 *  moderately loaded channel at baseline clocks. */
constexpr std::size_t kItemsPerEpoch = 4;
constexpr std::uint64_t kEpochsPerIteration = 256;

void
BM_EpochBarrier(benchmark::State &state)
{
    const unsigned shards = static_cast<unsigned>(state.range(0));
    const std::uint64_t epochTicks =
        static_cast<std::uint64_t>(state.range(1));

    WorkerPool pool(shards);
    SpinBarrier barrier(shards + 1);
    EpochStage<StagedItem> reqStage;
    std::vector<EpochStage<StagedItem>> complStage(shards);
    std::uint64_t merged = 0;

    for (auto _ : state) {
        pool.run(shards + 1, [&](unsigned shard) {
            Tick t{};
            for (std::uint64_t e = 0; e < kEpochsPerIteration; ++e) {
                const unsigned parity = static_cast<unsigned>(e & 1);
                if (shard == 0) {
                    reqStage.beginEpoch(parity);
                    // Merge-side: drain every shard's previous-epoch
                    // completions, as mergeStagedCompletions does.
                    for (auto &cs : complStage) {
                        for (const StagedItem &it :
                             cs.readBuf(parity ^ 1u)) {
                            merged += it.payload;
                        }
                    }
                    for (std::size_t i = 0; i < kItemsPerEpoch; ++i)
                        reqStage.push(parity, {t, e + i});
                } else {
                    auto &cs = complStage[shard - 1];
                    cs.beginEpoch(parity);
                    std::uint64_t absorbed = 0;
                    for (const StagedItem &it :
                         reqStage.readBuf(parity ^ 1u))
                        absorbed += it.payload;
                    for (std::size_t i = 0; i < kItemsPerEpoch; ++i)
                        cs.push(parity, {t, absorbed + i});
                }
                t += TickSpan{epochTicks};
                barrier.arriveAndWait();
            }
        });
    }
    benchmark::DoNotOptimize(merged);

    const double epochs = static_cast<double>(state.iterations()) *
                          static_cast<double>(kEpochsPerIteration);
    state.SetItemsProcessed(static_cast<std::int64_t>(epochs));
    state.counters["sim_ticks_per_s"] = benchmark::Counter(
        epochs * static_cast<double>(epochTicks),
        benchmark::Counter::kIsRate);
}

} // namespace

BENCHMARK(BM_EpochBarrier)
    ->ArgNames({"shards", "epoch_ticks"})
    ->ArgsProduct({{1, 2, 4, 8}, {8, 32, 128}})
    ->MeasureProcessCPUTime()
    ->UseRealTime();

BENCHMARK_MAIN();
