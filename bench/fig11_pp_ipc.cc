/**
 * @file
 * Figure 11: User IPC normalized to OAPM.
 * Regenerates the paper's figure rows; see EXPERIMENTS.md for the
 * paper-vs-measured comparison. Flags: --csv, --fast N.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mcsim;
    return bench::figureMain(
        argc, argv, "Figure 11: User IPC normalized to OAPM",
        "user IPC", bench::runPagePolicyStudy,
        [](const MetricSet &m) { return m.userIpc; }, true, 3);
}
