/**
 * @file
 * Permutation-interleaving ablation: the paper's Section 5 lists
 * permutation-based interleaving schemes as future work. This bench
 * compares the two XOR schemes (mem/address_mapping.hh) against the
 * best paper scheme at 2 and 4 channels: user IPC and row-buffer hit
 * rate per workload, normalized to the single-channel baseline — the
 * same presentation as the paper's Figures 12-13.
 *
 * Usage: ablation_mapping [--csv] [--fast N]
 */

#include "bench_common.hh"

using namespace mcsim;
using namespace mcsim::bench;

namespace {

std::vector<Series>
runPermutationStudy(ExperimentRunner &runner)
{
    std::vector<LabeledConfig> configs;
    configs.push_back({"1ch baseline", SimConfig::baseline()});
    for (std::uint32_t channels : {2u, 4u}) {
        for (auto scheme :
             {MappingScheme::RoChRaBaCo, MappingScheme::PermBaXor,
              MappingScheme::PermChBaXor}) {
            SimConfig cfg = SimConfig::baseline();
            cfg.dram.channels = channels;
            cfg.mapping = scheme;
            configs.push_back({std::to_string(channels) + "ch " +
                                   mappingSchemeName(scheme),
                               cfg});
        }
    }
    return runConfigStudy(runner, configs);
}

} // namespace

int
main(int argc, char **argv)
{
    const int rc = figureMain(
        argc, argv,
        "Permutation mapping ablation (a): user IPC normalized to the "
        "1-channel baseline",
        "user IPC", runPermutationStudy,
        [](const MetricSet &m) { return m.userIpc; },
        /*normalizeToFirst=*/true);
    if (rc != 0)
        return rc;
    return figureMain(
        argc, argv,
        "Permutation mapping ablation (b): row-buffer hit rate (%)",
        "row-buffer hit rate", runPermutationStudy,
        [](const MetricSet &m) { return m.rowHitRatePct; },
        /*normalizeToFirst=*/false);
}
