/**
 * @file
 * Figure 3: Average memory access latency normalized to FR-FCFS.
 * Regenerates the paper's figure rows; see EXPERIMENTS.md for the
 * paper-vs-measured comparison. Flags: --csv, --fast N.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace mcsim;
    return bench::figureMain(
        argc, argv, "Figure 3: Average memory access latency normalized to FR-FCFS",
        "avg memory access latency", bench::runSchedulerStudy,
        [](const MetricSet &m) { return m.avgReadLatency; }, true, 2);
}
