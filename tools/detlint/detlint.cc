/**
 * @file
 * detlint — the simulator's determinism linter.
 *
 * Simulation results must be a pure function of (config, workload,
 * seed): bit-identical across runs, hosts, and standard-library
 * implementations. This tool scans the simulation core (src/) for the
 * constructs that historically break that contract and fails the build
 * when it finds one that is not explicitly justified:
 *
 *  - unordered-iter: std::unordered_map / std::unordered_set in the
 *    simulation core. Hash-bucket order is implementation-defined, so
 *    any iteration over such a container (today or in a later edit)
 *    leaks nondeterminism into scheduling decisions — exactly the
 *    FcfsBanks head-of-bank bug this tool was built after. Every
 *    declaration must carry an allow annotation proving the container
 *    is insert/lookup/erase-only or that iteration order cannot reach
 *    simulation state.
 *
 *  - wall-clock: std::chrono clocks, time(), clock_gettime(),
 *    gettimeofday() in the core. Wall time belongs to the harness
 *    (bench/, tools/, examples/), never to simulated behavior.
 *
 *  - raw-rand: rand()/srand(), std::random_device, the std::mt19937
 *    family. All simulation randomness must flow through the seeded
 *    Pcg32 so runs replay exactly.
 *
 *  - raw-thread: std::thread construction/storage outside
 *    common/worker_pool.*. All parallelism — the sweep pool and the
 *    epoch-sharded kernel alike — draws from one budgeted WorkerPool;
 *    ad-hoc threads bypass the budget and the determinism argument.
 *    std::thread::hardware_concurrency() (a pure host query) stays
 *    legal. Suppressions need a detlint-allow(raw-thread) reason.
 *
 *  - raw-tick: a std::uint64_t variable whose name says it holds
 *    ticks. Time in the core is strongly typed (Tick/TickSpan and the
 *    per-domain cycle types in common/types.hh); a raw integer named
 *    *Ticks* bypasses the type system's domain checking.
 *
 * Suppression: append
 *     // detlint-allow(<rule>): <reason>
 * to the offending line or the line directly above it. The reason is
 * mandatory — an allow without one is itself a finding.
 *
 * Usage: detlint <dir-or-file>...
 * Exit status: 0 clean, 1 findings, 2 usage/IO error.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding
{
    std::string file;
    std::size_t line;
    std::string rule;
    std::string message;
};

/** One lexed source line: code with comments/literals blanked, plus
 *  the comment text (where detlint-allow annotations live). */
struct Line
{
    std::string code;
    std::string comment;
};

/**
 * Split a file into per-line code and comment streams with a small
 * state machine (block comments, line comments, string and char
 * literals). Literal contents are blanked in the code stream so text
 * inside strings never trips a rule.
 */
std::vector<Line>
lexFile(std::istream &in)
{
    enum class St { Code, Slash, Line, Block, BlockStar, Str, Chr };
    std::vector<Line> lines;
    std::string raw;
    St st = St::Code;
    while (std::getline(in, raw)) {
        Line out;
        bool escape = false;
        // A line comment never spans lines; \-continuations of line
        // comments are vanishingly rare in this codebase.
        if (st == St::Line || st == St::Slash)
            st = St::Code;
        if (st == St::Str || st == St::Chr)
            st = St::Code; // Unterminated literal: resync.
        for (const char c : raw) {
            switch (st) {
              case St::Code:
                if (c == '/') {
                    st = St::Slash;
                } else if (c == '"') {
                    st = St::Str;
                    out.code += '"';
                } else if (c == '\'') {
                    st = St::Chr;
                    out.code += '\'';
                } else {
                    out.code += c;
                }
                break;
              case St::Slash:
                if (c == '/') {
                    st = St::Line;
                } else if (c == '*') {
                    st = St::Block;
                } else {
                    out.code += '/';
                    out.code += c;
                    st = St::Code;
                }
                break;
              case St::Line:
                out.comment += c;
                break;
              case St::Block:
                out.comment += c;
                if (c == '*')
                    st = St::BlockStar;
                break;
              case St::BlockStar:
                if (c == '/') {
                    st = St::Code;
                } else {
                    out.comment += c;
                    if (c != '*')
                        st = St::Block;
                }
                break;
              case St::Str:
                if (escape) {
                    escape = false;
                } else if (c == '\\') {
                    escape = true;
                } else if (c == '"') {
                    out.code += '"';
                    st = St::Code;
                }
                break;
              case St::Chr:
                if (escape) {
                    escape = false;
                } else if (c == '\\') {
                    escape = true;
                } else if (c == '\'') {
                    out.code += '\'';
                    st = St::Code;
                }
                break;
            }
        }
        if (st == St::Slash) {
            out.code += '/';
            st = St::Code;
        }
        lines.push_back(std::move(out));
    }
    return lines;
}

/** Does this line's comment carry detlint-allow(<rule>)? Returns
 *  0 = no, 1 = yes with a reason, -1 = yes but reasonless. */
int
allowState(const Line &ln, const std::string &rule)
{
    const std::string needle = "detlint-allow(" + rule + ")";
    const auto pos = ln.comment.find(needle);
    if (pos == std::string::npos)
        return 0;
    const std::string rest = ln.comment.substr(pos + needle.size());
    for (const char c : rest) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            return 1; // Something word-like follows: a reason.
    }
    return -1;
}

class Linter
{
  public:
    void
    lintFile(const fs::path &path)
    {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "detlint: cannot read %s\n",
                         path.c_str());
            ioError = true;
            return;
        }
        const std::vector<Line> lines = lexFile(in);
        for (std::size_t i = 0; i < lines.size(); ++i) {
            const std::string &code = lines[i].code;
            checkRule(path, lines, i, "unordered-iter",
                      std::regex("\\bunordered_(map|set)\\s*<"), code,
                      "hash-ordered container in the simulation core; "
                      "iteration order is nondeterministic — prove it "
                      "is insert/lookup-only or use an ordered/indexed "
                      "container");
            checkRule(path, lines, i, "wall-clock",
                      std::regex("\\b(std\\s*::\\s*chrono\\b|"
                                 "steady_clock|system_clock|"
                                 "high_resolution_clock|gettimeofday\\s*"
                                 "\\(|clock_gettime\\s*\\(|"
                                 "\\btime\\s*\\(\\s*(nullptr|NULL|0)\\s*"
                                 "\\))"),
                      code,
                      "wall-clock time in the simulation core; timing "
                      "must come from the simulated clock domains");
            checkRule(path, lines, i, "raw-rand",
                      std::regex("\\b(std\\s*::\\s*rand\\b|srand\\s*\\(|"
                                 "\\brand\\s*\\(\\s*\\)|random_device|"
                                 "mt19937|default_random_engine)"),
                      code,
                      "unseeded / stdlib randomness; use the seeded "
                      "Pcg32 so runs replay bit-identically");
            checkRule(path, lines, i, "raw-tick",
                      std::regex("\\buint64_t\\s+[A-Za-z_]*"
                                 "[Tt]icks?[A-Za-z0-9_]*\\s*[=;{]"),
                      code,
                      "raw integer holding tick values; use "
                      "Tick/TickSpan so the clock-domain checks apply");
            // std::thread::hardware_concurrency() is a pure query and
            // stays legal: the lookahead rejects only construction-
            // capable uses (the bare type), not its static members.
            checkRule(path, lines, i, "raw-thread",
                      std::regex("\\bstd\\s*::\\s*thread\\b(?!\\s*::)"),
                      code,
                      "raw std::thread outside the shared worker pool; "
                      "route parallelism through WorkerPool so the "
                      "sweep/shard thread budget stays enforceable");
        }
        // Ignore #include lines for unordered-iter: pulling the header
        // in is fine, declaring the container is what needs the proof.
    }

    void
    checkRule(const fs::path &path, const std::vector<Line> &lines,
              std::size_t i, const std::string &rule,
              const std::regex &re, const std::string &code,
              const std::string &msg)
    {
        if (!std::regex_search(code, re))
            return;
        if (rule == "unordered-iter" &&
            code.find("#include") != std::string::npos)
            return;
        // The worker pool is the one sanctioned thread owner: every
        // other site must either go through it or carry an allow
        // annotation with a reason.
        if (rule == "raw-thread" &&
            path.filename().string().rfind("worker_pool.", 0) == 0)
            return;
        const int here = allowState(lines[i], rule);
        const int above = i > 0 ? allowState(lines[i - 1], rule) : 0;
        if (here == 1 || above == 1)
            return;
        if (here == -1 || above == -1) {
            findings.push_back({path.string(), i + 1, rule,
                                "detlint-allow(" + rule +
                                    ") without a reason; justify the "
                                    "suppression"});
            return;
        }
        findings.push_back({path.string(), i + 1, rule, msg});
    }

    std::vector<Finding> findings;
    bool ioError = false;
};

bool
lintable(const fs::path &p)
{
    const auto ext = p.extension().string();
    return ext == ".hh" || ext == ".cc" || ext == ".hpp" ||
           ext == ".cpp" || ext == ".h";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: detlint <dir-or-file>...\n");
        return 2;
    }
    Linter linter;
    std::size_t filesScanned = 0;
    for (int i = 1; i < argc; ++i) {
        const fs::path root(argv[i]);
        std::error_code ec;
        if (fs::is_directory(root, ec)) {
            std::vector<fs::path> files;
            for (const auto &e :
                 fs::recursive_directory_iterator(root, ec)) {
                if (e.is_regular_file() && lintable(e.path()))
                    files.push_back(e.path());
            }
            // Directory iteration order is OS-defined; sort so the
            // report (and this tool's own output) is deterministic.
            std::sort(files.begin(), files.end());
            for (const auto &f : files) {
                linter.lintFile(f);
                ++filesScanned;
            }
        } else if (fs::is_regular_file(root, ec)) {
            linter.lintFile(root);
            ++filesScanned;
        } else {
            std::fprintf(stderr, "detlint: no such path: %s\n",
                         argv[i]);
            return 2;
        }
    }
    for (const auto &f : linter.findings) {
        std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                    f.rule.c_str(), f.message.c_str());
    }
    std::printf("detlint: %zu file(s), %zu finding(s)\n", filesScanned,
                linter.findings.size());
    if (linter.ioError)
        return 2;
    return linter.findings.empty() ? 0 : 1;
}
