#!/bin/sh
# Apply (default) or check (--check) the repo .clang-format across all
# C++ sources. CI uses --check; see .github/workflows/ci.yml.
set -eu
cd "$(dirname "$0")/.."
mode="-i"
if [ "${1:-}" = "--check" ]; then
    mode="--dry-run -Werror"
fi
# shellcheck disable=SC2086 # $mode is intentionally word-split.
git ls-files '*.cc' '*.hh' '*.cpp' | xargs clang-format $mode
